// Workload tooling: key generators and the closed-loop runner.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "store/client.h"
#include "tests/test_util.h"
#include "workload/key_generator.h"
#include "workload/runner.h"

namespace mvstore::workload {
namespace {

TEST(KeyGeneratorTest, FormatKeyPadsAndOrders) {
  EXPECT_EQ(FormatKey("k", 7), "k00000007");
  EXPECT_LT(FormatKey("k", 9), FormatKey("k", 10));  // lexicographic == numeric
}

TEST(KeyGeneratorTest, UniformCoversSpace) {
  Rng rng(1);
  UniformKeyGenerator gen("k", 10);
  std::set<Key> seen;
  for (int i = 0; i < 500; ++i) seen.insert(gen.Next(rng));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(KeyGeneratorTest, RangeStaysInRange) {
  Rng rng(2);
  RangeKeyGenerator gen("k", 100, 5);
  for (int i = 0; i < 200; ++i) {
    const Key key = gen.Next(rng);
    EXPECT_GE(key, FormatKey("k", 100));
    EXPECT_LE(key, FormatKey("k", 104));
  }
}

TEST(KeyGeneratorTest, RangeWidthOneIsConstant) {
  Rng rng(3);
  RangeKeyGenerator gen("k", 42, 1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(gen.Next(rng), FormatKey("k", 42));
}

TEST(KeyGeneratorTest, ZipfianSkewsTraffic) {
  Rng rng(4);
  ZipfianKeyGenerator gen("k", 1000, 0.99);
  std::map<Key, int> counts;
  for (int i = 0; i < 20000; ++i) counts[gen.Next(rng)]++;
  int max_count = 0;
  for (const auto& [key, count] : counts) max_count = std::max(max_count, count);
  // The hottest key should absorb far more than its uniform share (20).
  EXPECT_GT(max_count, 1000);
}

TEST(RunnerTest, CountsOperationsAndLatency) {
  test::TestCluster tc;
  tc.cluster.BootstrapLoadRow("ticket", "k",
                              {{"status", std::string("open")}}, 100);
  ClosedLoopRunner runner(
      &tc.cluster, /*num_clients=*/2,
      [](int index, store::Client& client, std::function<void(bool)> done) {
        client.Get("ticket", "k", {.columns = {"status"}},
                   [done](store::ReadResult row) { done(row.ok()); });
      });
  RunResult result = runner.Run(Millis(20), Millis(200));
  EXPECT_GT(result.operations, 100u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_GT(result.Throughput(), 0.0);
  EXPECT_GT(result.latency.Mean(), 0.0);
  EXPECT_EQ(result.latency.count(), result.operations);
}

TEST(RunnerTest, MoreClientsMoreThroughputWhileUnsaturated) {
  test::TestCluster tc;
  tc.cluster.BootstrapLoadRow("ticket", "k",
                              {{"status", std::string("open")}}, 100);
  auto run_with = [&tc](int clients) {
    ClosedLoopRunner runner(
        &tc.cluster, clients,
        [](int, store::Client& client, std::function<void(bool)> done) {
          client.Get("ticket", "k", {.columns = {"status"}},
                     [done](store::ReadResult row) { done(row.ok()); });
        });
    return runner.Run(Millis(20), Millis(200)).Throughput();
  };
  const double one = run_with(1);
  const double four = run_with(4);
  EXPECT_GT(four, one * 2.0);
}

TEST(RunnerTest, ThinkTimeThrottlesThroughput) {
  test::TestCluster tc;
  tc.cluster.BootstrapLoadRow("ticket", "k",
                              {{"status", std::string("open")}}, 100);
  ClosedLoopRunner runner(
      &tc.cluster, 1,
      [](int, store::Client& client, std::function<void(bool)> done) {
        client.Get("ticket", "k", {.columns = {"status"}},
                   [done](store::ReadResult row) { done(row.ok()); });
      });
  runner.set_think_time(Millis(10));
  RunResult result = runner.Run(Millis(10), Millis(500));
  // ~1 op per 10ms of think time: around 50 ops, certainly < 80.
  EXPECT_GT(result.operations, 20u);
  EXPECT_LT(result.operations, 80u);
}

TEST(RunnerTest, FailuresAreCounted) {
  test::TestCluster tc;
  ClosedLoopRunner runner(
      &tc.cluster, 1,
      [](int, store::Client& client, std::function<void(bool)> done) {
        client.Get("no_such_table", "k", store::ReadOptions{},
                   [done](store::ReadResult row) { done(row.ok()); });
      });
  RunResult result = runner.Run(0, Millis(50));
  EXPECT_GT(result.operations, 0u);
  EXPECT_EQ(result.failures, result.operations);
}

}  // namespace
}  // namespace mvstore::workload

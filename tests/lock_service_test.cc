// Lock service semantics: shared/exclusive compatibility, FIFO fairness,
// per-resource independence, and network-delay behaviour.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "view/lock_service.h"

namespace mvstore::view {
namespace {

struct Fixture {
  // Jitter-free network: requests arrive in send order, so the FIFO
  // assertions below are deterministic. (FIFO is defined over ARRIVAL
  // order; with jitter, sends may legitimately be reordered in flight.)
  static sim::NetworkConfig NoJitter() {
    sim::NetworkConfig config;
    config.jitter_mean = 0;
    return config;
  }

  Fixture() : net(&sim, Rng(1), NoJitter()), locks(&sim, &net, 9) {}
  sim::Simulation sim;
  sim::Network net;
  LockService locks;
};

TEST(LockServiceTest, ExclusiveExcludesEveryone) {
  Fixture f;
  std::vector<int> order;
  f.locks.Acquire(0, "r", LockMode::kExclusive, [&] { order.push_back(1); });
  f.locks.Acquire(1, "r", LockMode::kExclusive, [&] { order.push_back(2); });
  f.locks.Acquire(2, "r", LockMode::kShared, [&] { order.push_back(3); });
  f.sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1}));

  f.locks.Release(0, "r", LockMode::kExclusive);
  f.sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  f.locks.Release(1, "r", LockMode::kExclusive);
  f.sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(LockServiceTest, SharedLocksCoexist) {
  Fixture f;
  int granted = 0;
  for (int i = 0; i < 5; ++i) {
    f.locks.Acquire(static_cast<sim::EndpointId>(i), "r", LockMode::kShared,
                    [&granted] { ++granted; });
  }
  f.sim.Run();
  EXPECT_EQ(granted, 5);
  EXPECT_EQ(f.locks.grants(), 5u);
  EXPECT_EQ(f.locks.waits(), 0u);
}

TEST(LockServiceTest, ExclusiveWaitsForAllSharedHolders) {
  Fixture f;
  bool exclusive_granted = false;
  f.locks.Acquire(0, "r", LockMode::kShared, [] {});
  f.locks.Acquire(1, "r", LockMode::kShared, [] {});
  f.sim.Run();
  f.locks.Acquire(2, "r", LockMode::kExclusive,
                  [&] { exclusive_granted = true; });
  f.sim.Run();
  EXPECT_FALSE(exclusive_granted);
  f.locks.Release(0, "r", LockMode::kShared);
  f.sim.Run();
  EXPECT_FALSE(exclusive_granted);
  f.locks.Release(1, "r", LockMode::kShared);
  f.sim.Run();
  EXPECT_TRUE(exclusive_granted);
}

TEST(LockServiceTest, FifoPreventsSharedStreamStarvingExclusive) {
  Fixture f;
  std::vector<char> order;
  f.locks.Acquire(0, "r", LockMode::kShared, [&] { order.push_back('a'); });
  f.sim.Run();
  f.locks.Acquire(1, "r", LockMode::kExclusive,
                  [&] { order.push_back('X'); });
  f.sim.Run();
  // A later shared request must queue BEHIND the waiting exclusive.
  f.locks.Acquire(2, "r", LockMode::kShared, [&] { order.push_back('b'); });
  f.sim.Run();
  EXPECT_EQ(order, (std::vector<char>{'a'}));
  f.locks.Release(0, "r", LockMode::kShared);
  f.sim.Run();
  EXPECT_EQ(order, (std::vector<char>{'a', 'X'}));
  f.locks.Release(1, "r", LockMode::kExclusive);
  f.sim.Run();
  EXPECT_EQ(order, (std::vector<char>{'a', 'X', 'b'}));
}

TEST(LockServiceTest, ResourcesAreIndependent) {
  Fixture f;
  int granted = 0;
  f.locks.Acquire(0, "r1", LockMode::kExclusive, [&granted] { ++granted; });
  f.locks.Acquire(1, "r2", LockMode::kExclusive, [&granted] { ++granted; });
  f.sim.Run();
  EXPECT_EQ(granted, 2);
}

TEST(LockServiceTest, GrantCrossesTheNetwork) {
  Fixture f;
  SimTime granted_at = -1;
  f.sim.At(0, [&] {
    f.locks.Acquire(0, "r", LockMode::kShared,
                    [&] { granted_at = f.sim.Now(); });
  });
  f.sim.Run();
  // Request + grant = two network hops: strictly positive virtual time.
  EXPECT_GT(granted_at, 0);
}

TEST(LockServiceTest, WouldGrantImmediatelyReflectsState) {
  Fixture f;
  EXPECT_TRUE(f.locks.WouldGrantImmediately("r", LockMode::kExclusive));
  f.locks.Acquire(0, "r", LockMode::kShared, [] {});
  f.sim.Run();
  EXPECT_TRUE(f.locks.WouldGrantImmediately("r", LockMode::kShared));
  EXPECT_FALSE(f.locks.WouldGrantImmediately("r", LockMode::kExclusive));
  f.locks.Release(0, "r", LockMode::kShared);
  f.sim.Run();
  EXPECT_TRUE(f.locks.WouldGrantImmediately("r", LockMode::kExclusive));
}

TEST(LockServiceTest, WaitsCounterCountsQueuedRequests) {
  Fixture f;
  f.locks.Acquire(0, "r", LockMode::kExclusive, [] {});
  f.sim.Run();
  f.locks.Acquire(1, "r", LockMode::kShared, [] {});
  f.sim.Run();
  EXPECT_EQ(f.locks.waits(), 1u);
}

}  // namespace
}  // namespace mvstore::view

// Fuzz of MergeSortedShardScans (ISSUE 10) against a single-map oracle.
//
// The scatter-gather read's k-way heap merge must be byte-equivalent to
// "pour every shard into one std::map and LWW-merge duplicate keys" — for
// any number of shards, overlapping key ranges, duplicated keys across
// shards, and timestamp TIES (where the Supersedes total order, not arrival
// order, decides the winner). The heap pops equal keys in unspecified
// relative order, so commutativity of the cell merge is exactly what the
// fuzz shakes.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/row.h"
#include "store/server.h"

namespace mvstore {
namespace {

using storage::Cell;
using storage::KeyedRow;
using storage::Row;

Row RandomRow(Rng& rng) {
  Row row;
  const int cells = static_cast<int>(rng.UniformInt(1, 3));
  for (int c = 0; c < cells; ++c) {
    const ColumnName col = "c" + std::to_string(rng.UniformInt(0, 2));
    // A tiny timestamp domain forces frequent ties; a tiny value domain
    // forces ties that even the value comparator must break consistently.
    Cell cell = rng.Chance(0.15)
                    ? Cell::Tombstone(rng.UniformInt(1, 4))
                    : Cell::Live("v" + std::to_string(rng.UniformInt(0, 2)),
                                 rng.UniformInt(1, 4));
    row.Apply(col, cell);
  }
  return row;
}

TEST(ScatterMergeFuzzTest, MatchesSingleMapOracle) {
  Rng rng(20130612);  // ICDE'13 in Brisbane
  for (int trial = 0; trial < 500; ++trial) {
    const int num_shards = static_cast<int>(rng.UniformInt(0, 6));
    std::vector<std::vector<KeyedRow>> shards(
        static_cast<std::size_t>(num_shards));
    std::map<Key, Row> oracle;
    for (auto& shard : shards) {
      const int rows = static_cast<int>(rng.UniformInt(0, 10));
      // A narrow key domain makes cross-shard duplicates common.
      std::map<Key, Row> sorted;
      for (int r = 0; r < rows; ++r) {
        const Key key = "k" + std::to_string(rng.UniformInt(0, 7));
        Row row = RandomRow(rng);
        sorted[key].MergeFrom(row);      // within-shard scans dedupe too
        oracle[key].MergeFrom(std::move(row));
      }
      for (auto& [key, row] : sorted) {
        shard.push_back(KeyedRow{key, std::move(row)});
      }
    }

    const std::vector<KeyedRow> merged =
        store::MergeSortedShardScans(std::move(shards));

    ASSERT_EQ(merged.size(), oracle.size()) << "trial " << trial;
    auto want = oracle.begin();
    for (std::size_t i = 0; i < merged.size(); ++i, ++want) {
      EXPECT_EQ(merged[i].key, want->first) << "trial " << trial;
      EXPECT_TRUE(merged[i].row == want->second)
          << "trial " << trial << " key " << merged[i].key;
    }
    // Output is strictly sorted (no residual duplicates).
    for (std::size_t i = 1; i < merged.size(); ++i) {
      EXPECT_LT(merged[i - 1].key, merged[i].key) << "trial " << trial;
    }
  }
}

// The disjoint case the production path actually exercises: per-shard key
// spaces that never collide merge to plain sorted concatenation.
TEST(ScatterMergeFuzzTest, DisjointShardsConcatenateSorted) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const int num_shards = static_cast<int>(rng.UniformInt(1, 5));
    std::vector<std::vector<KeyedRow>> shards(
        static_cast<std::size_t>(num_shards));
    std::size_t total = 0;
    for (int s = 0; s < num_shards; ++s) {
      const int rows = static_cast<int>(rng.UniformInt(0, 6));
      for (int r = 0; r < rows; ++r) {
        // Shard id leads the key: cross-shard keys can never be equal.
        shards[static_cast<std::size_t>(s)].push_back(KeyedRow{
            std::to_string(s) + "/" + std::to_string(r), RandomRow(rng)});
        ++total;
      }
    }
    const std::vector<KeyedRow> merged =
        store::MergeSortedShardScans(std::move(shards));
    ASSERT_EQ(merged.size(), total);
    for (std::size_t i = 1; i < merged.size(); ++i) {
      EXPECT_LT(merged[i - 1].key, merged[i].key);
    }
  }
}

}  // namespace
}  // namespace mvstore

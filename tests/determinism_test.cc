// Whole-system determinism: a fixed seed fixes every latency sample,
// interleaving, and workload draw, so two identical runs produce identical
// simulations — the property that makes benches reproducible and property-
// test failures replayable.

#include <gtest/gtest.h>

#include <string>

#include "store/client.h"
#include "tests/test_util.h"
#include "view/scrub.h"
#include "workload/runner.h"

namespace mvstore {
namespace {

struct RunFingerprint {
  std::uint64_t steps;
  SimTime end_time;
  std::uint64_t puts;
  std::uint64_t propagations;
  std::uint64_t chain_hops;
  std::uint64_t stale_rows;
  double put_latency_mean;

  friend bool operator==(const RunFingerprint& a, const RunFingerprint& b) {
    return a.steps == b.steps && a.end_time == b.end_time &&
           a.puts == b.puts && a.propagations == b.propagations &&
           a.chain_hops == b.chain_hops && a.stale_rows == b.stale_rows &&
           a.put_latency_mean == b.put_latency_mean;
  }
};

RunFingerprint RunOnce(std::uint64_t seed) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.seed = seed;
  test::TestCluster t(config);
  for (int k = 0; k < 20; ++k) {
    t.cluster.BootstrapLoadRow(
        "ticket", "t" + std::to_string(k),
        {{"assigned_to", "a" + std::to_string(k % 4)},
         {"status", std::string("open")}},
        100 + k);
  }
  Rng rng(seed * 7);
  workload::ClosedLoopRunner runner(
      &t.cluster, 4,
      [&rng](int, store::Client& client, std::function<void(bool)> done) {
        const Key key = "t" + std::to_string(rng.UniformInt(0, 19));
        if (rng.Chance(0.5)) {
          client.Put("ticket", key,
                     {{"assigned_to", "a" + std::to_string(rng.UniformInt(0, 5))}},
                     [done](Status s) { done(s.ok()); });
        } else {
          client.Get("ticket", key, {"status"},
                     [done](StatusOr<storage::Row> r) { done(r.ok()); });
        }
      });
  workload::RunResult result = runner.Run(Millis(10), Millis(500));
  t.Quiesce();

  view::ScrubReport report =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  const store::Metrics& m = t.cluster.metrics();
  return RunFingerprint{t.cluster.simulation().steps(),
                        t.cluster.Now(),
                        m.client_puts,
                        m.propagations_completed,
                        m.chain_hops,
                        report.stale_rows,
                        m.put_latency.Mean()};
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalRuns) {
  const RunFingerprint a = RunOnce(12345);
  const RunFingerprint b = RunOnce(12345);
  EXPECT_TRUE(a == b) << "steps " << a.steps << " vs " << b.steps
                      << ", end " << a.end_time << " vs " << b.end_time;
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  const RunFingerprint a = RunOnce(111);
  const RunFingerprint b = RunOnce(222);
  // Latency jitter alone guarantees the event counts drift apart.
  EXPECT_FALSE(a == b);
}

TEST(DeterminismTest, FingerprintStableAcrossThreeRuns) {
  const RunFingerprint first = RunOnce(777);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(RunOnce(777) == first) << "run " << i;
  }
}

}  // namespace
}  // namespace mvstore

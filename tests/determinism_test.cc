// Whole-system determinism: a fixed seed fixes every latency sample,
// interleaving, and workload draw, so two identical runs produce identical
// simulations — the property that makes benches reproducible and property-
// test failures replayable.

#include <gtest/gtest.h>

#include <string>

#include "sim/nemesis.h"
#include "store/client.h"
#include "tests/test_util.h"
#include "view/scrub.h"
#include "workload/runner.h"

namespace mvstore {
namespace {

struct RunFingerprint {
  std::uint64_t steps;
  SimTime end_time;
  std::uint64_t puts;
  std::uint64_t propagations;
  std::uint64_t chain_hops;
  std::uint64_t stale_rows;
  double put_latency_mean;

  friend bool operator==(const RunFingerprint& a, const RunFingerprint& b) {
    return a.steps == b.steps && a.end_time == b.end_time &&
           a.puts == b.puts && a.propagations == b.propagations &&
           a.chain_hops == b.chain_hops && a.stale_rows == b.stale_rows &&
           a.put_latency_mean == b.put_latency_mean;
  }
};

RunFingerprint RunOnce(std::uint64_t seed) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.seed = seed;
  test::TestCluster t(config);
  for (int k = 0; k < 20; ++k) {
    t.cluster.BootstrapLoadRow(
        "ticket", "t" + std::to_string(k),
        {{"assigned_to", "a" + std::to_string(k % 4)},
         {"status", std::string("open")}},
        100 + k);
  }
  Rng rng(seed * 7);
  workload::ClosedLoopRunner runner(
      &t.cluster, 4,
      [&rng](int, store::Client& client, std::function<void(bool)> done) {
        const Key key = "t" + std::to_string(rng.UniformInt(0, 19));
        if (rng.Chance(0.5)) {
          client.Put(
              "ticket", key,
              {{"assigned_to", "a" + std::to_string(rng.UniformInt(0, 5))}},
              store::WriteOptions{},
              [done](store::WriteResult w) { done(w.ok()); });
        } else {
          client.Get("ticket", key, {.columns = {"status"}},
                     [done](store::ReadResult r) { done(r.ok()); });
        }
      });
  workload::RunResult result = runner.Run(Millis(10), Millis(500));
  t.Quiesce();

  view::ScrubReport report =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  const store::Metrics& m = t.cluster.metrics();
  return RunFingerprint{t.cluster.simulation().steps(),
                        t.cluster.Now(),
                        m.client_puts,
                        m.propagations_completed,
                        m.chain_hops,
                        report.stale_rows,
                        m.put_latency.Mean()};
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalRuns) {
  const RunFingerprint a = RunOnce(12345);
  const RunFingerprint b = RunOnce(12345);
  EXPECT_TRUE(a == b) << "steps " << a.steps << " vs " << b.steps
                      << ", end " << a.end_time << " vs " << b.end_time;
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  const RunFingerprint a = RunOnce(111);
  const RunFingerprint b = RunOnce(222);
  // Latency jitter alone guarantees the event counts drift apart.
  EXPECT_FALSE(a == b);
}

TEST(DeterminismTest, FingerprintStableAcrossThreeRuns) {
  const RunFingerprint first = RunOnce(777);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(RunOnce(777) == first) << "run " << i;
  }
}

// A chaos run is a simulation like any other: the same nemesis seed must
// reproduce the same crashes, the same aborted operations, the same WAL
// replays — event for event.
struct ChaosFingerprint {
  std::uint64_t steps;
  SimTime end_time;
  std::uint64_t crashes;
  std::uint64_t restarts;
  std::uint64_t aborted;
  std::uint64_t wal_replayed;
  std::uint64_t locks_expired;
  std::uint64_t orphaned;
  std::uint64_t recovered;
  std::uint64_t events_fired;

  friend bool operator==(const ChaosFingerprint& a, const ChaosFingerprint& b) {
    return a.steps == b.steps && a.end_time == b.end_time &&
           a.crashes == b.crashes && a.restarts == b.restarts &&
           a.aborted == b.aborted && a.wal_replayed == b.wal_replayed &&
           a.locks_expired == b.locks_expired && a.orphaned == b.orphaned &&
           a.recovered == b.recovered && a.events_fired == b.events_fired;
  }
};

ChaosFingerprint RunChaosOnce(std::uint64_t seed) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.seed = seed;
  config.rpc_timeout = Millis(50);
  config.lock_lease_ttl = Millis(100);
  config.view_scrub_interval = Millis(250);
  config.anti_entropy_interval = Millis(300);
  test::TestCluster t(config);
  for (int k = 0; k < 10; ++k) {
    t.cluster.BootstrapLoadRow(
        "ticket", "t" + std::to_string(k),
        {{"assigned_to", "a" + std::to_string(k % 3)},
         {"status", std::string("open")}},
        100 + k);
  }
  sim::Nemesis nemesis(
      &t.cluster.simulation(), &t.cluster.network(),
      [&t](sim::EndpointId s) { t.cluster.CrashServer(s); },
      [&t](sim::EndpointId s) { t.cluster.RestartServer(s); });
  sim::NemesisOptions options;
  options.horizon = Seconds(2);
  options.num_servers = t.cluster.num_servers();
  options.crashes = 2;
  options.partitions = 1;
  const sim::FaultSchedule schedule =
      sim::GenerateRandomSchedule(Rng(seed * 13), options);
  nemesis.Schedule(schedule);
  nemesis.HealAllAt(options.horizon);

  Rng rng(seed * 5);
  auto client = t.cluster.NewClient(0);
  client->set_request_timeout(Millis(120));
  std::function<void()> issue = [&] {
    const Key key = "t" + std::to_string(rng.UniformInt(0, 9));
    client->Put("ticket", key,
                {{"assigned_to", "a" + std::to_string(rng.UniformInt(0, 4))}},
                {.quorum = 1}, [&issue](store::WriteResult) { issue(); });
  };
  issue();
  t.cluster.RunFor(options.horizon + Millis(500));
  issue = [] {};
  t.views->Quiesce();
  t.cluster.RunFor(Seconds(1));

  const store::Metrics& m = t.cluster.metrics();
  return ChaosFingerprint{t.cluster.simulation().steps(),
                          t.cluster.Now(),
                          m.server_crashes,
                          m.server_restarts,
                          m.inflight_ops_aborted,
                          m.wal_cells_replayed,
                          m.locks_expired,
                          m.propagations_orphaned,
                          m.orphaned_propagations_recovered,
                          nemesis.events_fired()};
}

TEST(DeterminismTest, IdenticalNemesisSeedsProduceIdenticalChaosRuns) {
  const ChaosFingerprint a = RunChaosOnce(4242);
  const ChaosFingerprint b = RunChaosOnce(4242);
  EXPECT_TRUE(a == b) << "steps " << a.steps << " vs " << b.steps << ", end "
                      << a.end_time << " vs " << b.end_time << ", crashes "
                      << a.crashes << " vs " << b.crashes;
  EXPECT_GT(a.crashes, 0u) << "the schedule must actually crash something";
}

}  // namespace
}  // namespace mvstore

// Basic materialized-view behaviour: Definition 1 reads, incremental
// maintenance of single updates (paper Example 1), versioned-view structure,
// and the view/base divergence-then-convergence lifecycle.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "store/codec.h"
#include "tests/test_util.h"
#include "view/scrub.h"
#include "view/view_row.h"

namespace mvstore {
namespace {

using store::Mutation;
using store::QuerySpec;
using store::ReadOptions;
using store::ViewRecord;
using test::TestCluster;

// Loads the Figure 1 database: seven tickets with assignees and statuses.
void LoadFigure1(store::Cluster& cluster) {
  struct Ticket {
    const char* id;
    const char* status;
    const char* assigned_to;  // nullptr = unassigned (ticket 6)
  };
  const Ticket tickets[] = {
      {"1", "open", "rliu"},    {"2", "open", "kmsalem"},
      {"3", "open", "kmsalem"}, {"4", "resolved", "rliu"},
      {"5", "open", "cjin"},    {"6", "new", nullptr},
      {"7", "resolved", "cjin"},
  };
  Timestamp ts = 1000;
  for (const Ticket& t : tickets) {
    Mutation m;
    m["status"] = t.status;
    m["description"] = std::string("desc-") + t.id;
    if (t.assigned_to != nullptr) m["assigned_to"] = t.assigned_to;
    cluster.BootstrapLoadRow("ticket", t.id, m, ts++);
  }
}

std::map<Key, Value> StatusByTicket(const std::vector<ViewRecord>& records) {
  std::map<Key, Value> result;
  for (const ViewRecord& r : records) {
    result[r.base_key] = r.cells.GetValue("status").value_or("<none>");
  }
  return result;
}

TEST(ViewBasicTest, Figure1ViewContents) {
  TestCluster t;
  LoadFigure1(t.cluster);
  auto client = t.cluster.NewClient();

  auto rliu = client->QuerySync(
      QuerySpec::View("assigned_to_view", "rliu"), ReadOptions{});
  ASSERT_TRUE(rliu.ok()) << rliu.status;
  EXPECT_EQ(StatusByTicket(rliu.records),
            (std::map<Key, Value>{{"1", "open"}, {"4", "resolved"}}));

  auto kmsalem = client->QuerySync(
      QuerySpec::View("assigned_to_view", "kmsalem"), ReadOptions{});
  ASSERT_TRUE(kmsalem.ok());
  EXPECT_EQ(StatusByTicket(kmsalem.records),
            (std::map<Key, Value>{{"2", "open"}, {"3", "open"}}));

  auto cjin = client->QuerySync(
      QuerySpec::View("assigned_to_view", "cjin"), ReadOptions{});
  ASSERT_TRUE(cjin.ok());
  EXPECT_EQ(StatusByTicket(cjin.records),
            (std::map<Key, Value>{{"5", "open"}, {"7", "resolved"}}));

  // Ticket 6 has a NULL view key: no view row anywhere (Definition 1).
  auto nobody = client->QuerySync(
      QuerySpec::View("assigned_to_view", ""), ReadOptions{});
  ASSERT_TRUE(nobody.ok());
  EXPECT_TRUE(nobody.records.empty());
}

TEST(ViewBasicTest, ViewsAreNotUpdateable) {
  TestCluster t;
  auto client = t.cluster.NewClient();
  auto put = client->PutSync("assigned_to_view", "rliu", {{"status", "x"}},
                             store::WriteOptions{});
  EXPECT_EQ(put.status.code(), StatusCode::kInvalidArgument);
  // And plain Gets are redirected away from the backing table.
  auto get = client->GetSync("assigned_to_view", "rliu", ReadOptions{});
  EXPECT_EQ(get.status.code(), StatusCode::kInvalidArgument);
}

TEST(ViewBasicTest, MaterializedColumnUpdatePropagates) {
  TestCluster t;
  LoadFigure1(t.cluster);
  auto client = t.cluster.NewClient();

  ASSERT_TRUE(client->PutSync("ticket", "1", {{"status", "resolved"}},
                              store::WriteOptions{})
                  .ok());
  t.Quiesce();

  auto rliu = client->QuerySync(
      QuerySpec::View("assigned_to_view", "rliu"), ReadOptions{});
  ASSERT_TRUE(rliu.ok());
  EXPECT_EQ(StatusByTicket(rliu.records),
            (std::map<Key, Value>{{"1", "resolved"}, {"4", "resolved"}}));
}

// Example 1: reassigning ticket 2 from kmsalem to rliu moves the view row.
TEST(ViewBasicTest, Example1ViewKeyUpdate) {
  TestCluster t;
  LoadFigure1(t.cluster);
  auto client = t.cluster.NewClient();

  ASSERT_TRUE(client->PutSync("ticket", "2", {{"assigned_to", "rliu"}},
                              store::WriteOptions{})
                  .ok());
  t.Quiesce();

  auto rliu = client->QuerySync(
      QuerySpec::View("assigned_to_view", "rliu"), ReadOptions{});
  ASSERT_TRUE(rliu.ok());
  EXPECT_EQ(StatusByTicket(rliu.records),
            (std::map<Key, Value>{
                {"1", "open"}, {"2", "open"}, {"4", "resolved"}}));

  auto kmsalem = client->QuerySync(
      QuerySpec::View("assigned_to_view", "kmsalem"), ReadOptions{});
  ASSERT_TRUE(kmsalem.ok());
  EXPECT_EQ(StatusByTicket(kmsalem.records), (std::map<Key, Value>{{"3", "open"}}));

  // The versioned view retains a stale row under kmsalem whose Next pointer
  // leads to rliu (Definition 3) — invisible to reads, visible to the
  // scrubber.
  view::ScrubReport report = view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(report.clean()) << report.Summary();
  EXPECT_GE(report.stale_rows, 1u);
}

TEST(ViewBasicTest, ViewGetReturnsOnlyRequestedColumns) {
  store::Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "ticket"}).ok());
  store::ViewDef def;
  def.name = "assigned_to_view";
  def.base_table = "ticket";
  def.view_key_column = "assigned_to";
  def.materialized_columns = {"status", "priority"};
  ASSERT_TRUE(schema.CreateView(def).ok());

  TestCluster t(test::DefaultTestConfig(), std::move(schema));
  t.cluster.BootstrapLoadRow(
      "ticket", "1",
      {{"assigned_to", "rliu"}, {"status", "open"}, {"priority", "P1"}}, 100);

  auto client = t.cluster.NewClient();
  auto records = client->QuerySync(
      QuerySpec::View("assigned_to_view", "rliu"), {.columns = {"priority"}});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.records.size(), 1u);
  EXPECT_EQ(records.records[0].cells.GetValue("priority").value_or(""), "P1");
  EXPECT_FALSE(records.records[0].cells.GetValue("status").has_value());
}

TEST(ViewBasicTest, FreshInsertCreatesViewRow) {
  TestCluster t;
  auto client = t.cluster.NewClient();

  ASSERT_TRUE(client
                  ->PutSync("ticket", "42",
                            {{"assigned_to", "alice"}, {"status", "new"}},
                            store::WriteOptions{})
                  .ok());
  t.Quiesce();

  auto records = client->QuerySync(
      QuerySpec::View("assigned_to_view", "alice"), ReadOptions{});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(StatusByTicket(records.records),
            (std::map<Key, Value>{{"42", "new"}}));
  EXPECT_TRUE(
      view::CheckView(t.cluster, test::TicketView(t.cluster)).clean());
}

TEST(ViewBasicTest, ViewKeyDeletionHidesRow) {
  TestCluster t;
  LoadFigure1(t.cluster);
  auto client = t.cluster.NewClient();

  ASSERT_TRUE(client->DeleteSync("ticket", "1", {"assigned_to"},
                                 store::WriteOptions{})
          .ok());
  t.Quiesce();

  auto rliu = client->QuerySync(
      QuerySpec::View("assigned_to_view", "rliu"), ReadOptions{});
  ASSERT_TRUE(rliu.ok());
  EXPECT_EQ(StatusByTicket(rliu.records), (std::map<Key, Value>{{"4", "resolved"}}));
  EXPECT_TRUE(
      view::CheckView(t.cluster, test::TicketView(t.cluster)).clean());

  // Reassigning later (larger timestamp) resurrects the row under a new key.
  ASSERT_TRUE(client->PutSync("ticket", "1", {{"assigned_to", "bob"}},
                              store::WriteOptions{})
                  .ok());
  t.Quiesce();
  auto bob = client->QuerySync(
      QuerySpec::View("assigned_to_view", "bob"), ReadOptions{});
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(StatusByTicket(bob.records), (std::map<Key, Value>{{"1", "open"}}));
}

TEST(ViewBasicTest, ChainOfReassignments) {
  TestCluster t;
  LoadFigure1(t.cluster);
  auto client = t.cluster.NewClient();

  const char* assignees[] = {"a", "b", "c", "d", "e"};
  for (const char* who : assignees) {
    ASSERT_TRUE(
        client->PutSync("ticket", "5", {{"assigned_to", who}},
                        store::WriteOptions{})
            .ok());
  }
  t.Quiesce();

  for (const char* who : {"cjin", "a", "b", "c", "d"}) {
    auto records = client->QuerySync(
        QuerySpec::View("assigned_to_view", who), ReadOptions{});
    ASSERT_TRUE(records.ok());
    EXPECT_EQ(StatusByTicket(records.records).count("5"), 0u) << who;
  }
  auto e = client->QuerySync(
      QuerySpec::View("assigned_to_view", "e"), ReadOptions{});
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(StatusByTicket(e.records), (std::map<Key, Value>{{"5", "open"}}));

  view::ScrubReport report =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(report.clean()) << report.Summary();
  EXPECT_GE(report.stale_rows, 5u);  // cjin + a..d are stale rows now
}

TEST(ViewBasicTest, UpdateBothViewKeyAndMaterializedColumn) {
  TestCluster t;
  LoadFigure1(t.cluster);
  auto client = t.cluster.NewClient();

  ASSERT_TRUE(client
                  ->PutSync("ticket", "3",
                            {{"assigned_to", "rliu"}, {"status", "resolved"}},
                            store::WriteOptions{})
                  .ok());
  t.Quiesce();

  auto rliu = client->QuerySync(
      QuerySpec::View("assigned_to_view", "rliu"), ReadOptions{});
  ASSERT_TRUE(rliu.ok());
  EXPECT_EQ(StatusByTicket(rliu.records)["3"], "resolved");
  EXPECT_TRUE(
      view::CheckView(t.cluster, test::TicketView(t.cluster)).clean());
}

}  // namespace
}  // namespace mvstore

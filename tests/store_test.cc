// Record-store integration tests: Put/Get semantics, quorum consistency
// (R+W>N vs R+W<=N), deletions, read repair, failure handling, and
// anti-entropy convergence.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "store/client.h"
#include "store/cluster.h"
#include "tests/test_util.h"

namespace mvstore {
namespace {

using store::Mutation;
using store::ReadOptions;
using store::WriteOptions;

store::Schema PlainSchema() {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "t"}).ok());
  return schema;
}

TEST(StoreTest, PutThenGetRoundTrip) {
  test::TestCluster tc(test::DefaultTestConfig(), PlainSchema());
  auto client = tc.cluster.NewClient();
  ASSERT_TRUE(client->PutSync("t", "k",
                              {{"a", std::string("1")}, {"b", std::string("2")}},
                              WriteOptions{})
                  .ok());
  auto got = client->GetSync("t", "k", ReadOptions{});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.row.GetValue("a").value_or(""), "1");
  EXPECT_EQ(got.row.GetValue("b").value_or(""), "2");
}

TEST(StoreTest, GetOfMissingKeyReturnsEmptyRow) {
  test::TestCluster tc(test::DefaultTestConfig(), PlainSchema());
  auto client = tc.cluster.NewClient();
  auto got = client->GetSync("t", "missing", ReadOptions{});
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.row.empty());
}

TEST(StoreTest, GetSubsetOfColumns) {
  test::TestCluster tc(test::DefaultTestConfig(), PlainSchema());
  auto client = tc.cluster.NewClient();
  ASSERT_TRUE(client->PutSync("t", "k",
                              {{"a", std::string("1")}, {"b", std::string("2")}},
                              WriteOptions{})
                  .ok());
  auto got = client->GetSync("t", "k", {.columns = {"b"}});
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.row.GetValue("a").has_value());
  EXPECT_EQ(got.row.GetValue("b").value_or(""), "2");
}

TEST(StoreTest, UnknownTableErrors) {
  test::TestCluster tc(test::DefaultTestConfig(), PlainSchema());
  auto client = tc.cluster.NewClient();
  EXPECT_TRUE(
      client->GetSync("nope", "k", ReadOptions{}).status.IsNotFound());
  EXPECT_TRUE(client->PutSync("nope", "k", {{"a", std::string("1")}},
                              WriteOptions{})
                  .status.IsNotFound());
}

TEST(StoreTest, EmptyMutationRejected) {
  test::TestCluster tc(test::DefaultTestConfig(), PlainSchema());
  auto client = tc.cluster.NewClient();
  EXPECT_EQ(client->PutSync("t", "k", {}, WriteOptions{}).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(StoreTest, LastWriterWinsAcrossClients) {
  test::TestCluster tc(test::DefaultTestConfig(), PlainSchema());
  auto c1 = tc.cluster.NewClient(0);
  auto c2 = tc.cluster.NewClient(1);
  const Timestamp t1 = store::kClientTimestampEpoch + 100;
  const Timestamp t2 = store::kClientTimestampEpoch + 200;
  // Issue the NEWER write first; the older one must not clobber it.
  ASSERT_TRUE(
      c1->PutSync("t", "k", {{"a", std::string("new")}}, {.ts = t2}).ok());
  ASSERT_TRUE(
      c2->PutSync("t", "k", {{"a", std::string("old")}}, {.ts = t1}).ok());
  auto got = c1->GetSync("t", "k", {.quorum = 3});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.row.GetValue("a").value_or(""), "new");
}

TEST(StoreTest, DeleteHidesValue) {
  test::TestCluster tc(test::DefaultTestConfig(), PlainSchema());
  auto client = tc.cluster.NewClient();
  ASSERT_TRUE(
      client->PutSync("t", "k", {{"a", std::string("1")}}, WriteOptions{})
          .ok());
  ASSERT_TRUE(client->DeleteSync("t", "k", {"a"}, WriteOptions{}).ok());
  auto got = client->GetSync("t", "k", {.quorum = 3});
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.row.GetValue("a").has_value());
}

TEST(StoreTest, QuorumOverlapGuaranteesReadYourWrites) {
  // R + W > N: every read overlaps the write quorum (Section II).
  store::ClusterConfig config = test::DefaultTestConfig();
  config.default_write_quorum = 2;
  config.default_read_quorum = 2;  // 2 + 2 > 3
  test::TestCluster tc(config, PlainSchema());
  auto client = tc.cluster.NewClient();
  for (int i = 0; i < 50; ++i) {
    const std::string v = std::to_string(i);
    ASSERT_TRUE(client->PutSync("t", "k", {{"a", v}}, WriteOptions{}).ok());
    auto got = client->GetSync("t", "k", ReadOptions{});
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.row.GetValue("a").value_or(""), v) << "iteration " << i;
  }
}

TEST(StoreTest, ReadRepairConvergesReplicas) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.default_write_quorum = 1;
  test::TestCluster tc(config, PlainSchema());
  auto client = tc.cluster.NewClient();
  ASSERT_TRUE(
      client->PutSync("t", "k", {{"a", std::string("v")}}, WriteOptions{})
          .ok());
  // Writes were acked at W=1 but sent to all replicas; wait for the tail,
  // then check that a read triggered no divergence... instead force the
  // issue: apply a NEWER cell at only one replica, then read with R=3 so
  // read repair pushes it to the others.
  const auto replicas = tc.cluster.server(0).ReplicasOf("t", "k");
  tc.cluster.server(replicas[0])
      .LocalApply("t", "k",
                  [] {
                    storage::Row row;
                    row.Apply("a", storage::Cell::Live(
                                       "newer", store::kClientTimestampEpoch +
                                                    Seconds(500)));
                    return row;
                  }());
  auto got = client->GetSync("t", "k", {.quorum = 3});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.row.GetValue("a").value_or(""), "newer");
  tc.cluster.RunFor(Millis(100));  // let repair writes land
  EXPECT_GT(tc.cluster.metrics().read_repairs, 0u);
  for (ServerId replica : replicas) {
    auto cell = tc.cluster.server(replica).EngineFor("t").GetCell("t", "a");
    (void)cell;  // wrong key on purpose? no: check real key below
    auto repaired = tc.cluster.server(replica).EngineFor("t").GetCell("k", "a");
    ASSERT_TRUE(repaired.has_value()) << "replica " << replica;
    EXPECT_EQ(repaired->value, "newer") << "replica " << replica;
  }
}

TEST(StoreTest, WriteFailsWithoutQuorumOfReplicas) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.rpc_timeout = Millis(50);
  test::TestCluster tc(config, PlainSchema());
  auto client = tc.cluster.NewClient(0);

  // Take down two of the three replicas of "k": W=3 cannot be met.
  const auto replicas = tc.cluster.server(0).ReplicasOf("t", "k");
  tc.cluster.network().SetEndpointDown(replicas[1], true);
  tc.cluster.network().SetEndpointDown(replicas[2], true);

  // The coordinator itself must stay reachable; pick it as the surviving
  // replica's server if needed. Route through the surviving replica.
  auto surviving_client = tc.cluster.NewClient(replicas[0]);
  store::WriteResult w3 = surviving_client->PutSync(
      "t", "k", {{"a", std::string("x")}}, {.quorum = 3});
  EXPECT_TRUE(w3.status.IsUnavailable());

  // W=1 still succeeds through the surviving replica.
  store::WriteResult w1 = surviving_client->PutSync(
      "t", "k", {{"a", std::string("x")}}, {.quorum = 1});
  EXPECT_TRUE(w1.ok());
}

TEST(StoreTest, ReadFailsWithoutQuorumOfReplicas) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.rpc_timeout = Millis(50);
  test::TestCluster tc(config, PlainSchema());
  const auto replicas = tc.cluster.server(0).ReplicasOf("t", "k");
  tc.cluster.network().SetEndpointDown(replicas[1], true);
  tc.cluster.network().SetEndpointDown(replicas[2], true);
  auto client = tc.cluster.NewClient(replicas[0]);
  auto r3 = client->GetSync("t", "k", {.quorum = 3});
  EXPECT_TRUE(r3.status.IsUnavailable());
  auto r1 = client->GetSync("t", "k", {.quorum = 1});
  EXPECT_TRUE(r1.ok());
}

TEST(StoreTest, AntiEntropyConvergesAfterMessageLoss) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.anti_entropy_interval = Seconds(1);
  test::TestCluster tc(config, PlainSchema());
  auto client = tc.cluster.NewClient();

  // Drop 60% of messages while writing; W=1 acks still mostly succeed.
  tc.cluster.network().set_drop_probability(0.6);
  int acked = 0;
  for (int i = 0; i < 30; ++i) {
    client->Put("t", "key" + std::to_string(i), {{"a", std::to_string(i)}},
                {.quorum = 1}, [&acked](store::WriteResult result) {
                  if (result.ok()) ++acked;
                });
  }
  tc.cluster.RunFor(Seconds(2));
  tc.cluster.network().set_drop_probability(0.0);

  // Several anti-entropy rounds: replicas of every acked key converge.
  tc.cluster.RunFor(Seconds(5));
  EXPECT_GT(acked, 0);
  EXPECT_GT(tc.cluster.metrics().anti_entropy_rows_pushed, 0u);

  int converged = 0;
  for (int i = 0; i < 30; ++i) {
    const Key key = "key" + std::to_string(i);
    const auto replicas = tc.cluster.server(0).ReplicasOf("t", key);
    std::optional<storage::Cell> reference;
    bool all_equal = true;
    bool any = false;
    for (ServerId replica : replicas) {
      auto cell = tc.cluster.server(replica).EngineFor("t").GetCell(key, "a");
      if (!cell) {
        all_equal = false;
        continue;
      }
      any = true;
      if (!reference) {
        reference = cell;
      } else if (!(*reference == *cell)) {
        all_equal = false;
      }
    }
    if (any && all_equal) ++converged;
  }
  // Every key that reached at least one replica must now be on all three.
  EXPECT_GE(converged, acked);
}

TEST(StoreTest, DownCoordinatorTimesOutClient) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.rpc_timeout = Millis(50);
  test::TestCluster tc(config, PlainSchema());
  tc.cluster.network().SetEndpointDown(2, true);
  auto client = tc.cluster.NewClient(2);
  bool called = false;
  client->Get("t", "k", ReadOptions{},
              [&called](store::ReadResult) { called = true; });
  tc.cluster.RunFor(Seconds(1));
  // The request vanished into the dead coordinator: no reply at all. (A real
  // client library would time out locally; the simulation surfaces the hang.)
  EXPECT_FALSE(called);
}

TEST(StoreTest, ConcurrentClientsOnDifferentKeysAllSucceed) {
  test::TestCluster tc(test::DefaultTestConfig(), PlainSchema());
  constexpr int kClients = 8;
  constexpr int kOpsPerClient = 20;
  std::vector<std::unique_ptr<store::Client>> clients;
  int completed = 0;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(tc.cluster.NewClient(static_cast<ServerId>(c % 4)));
  }
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kOpsPerClient; ++i) {
      clients[static_cast<std::size_t>(c)]->Put(
          "t", "k" + std::to_string(c) + "_" + std::to_string(i),
          {{"v", std::to_string(i)}}, WriteOptions{},
          [&completed](store::WriteResult result) {
            ASSERT_TRUE(result.ok());
            ++completed;
          });
    }
  }
  while (completed < kClients * kOpsPerClient) {
    ASSERT_TRUE(tc.cluster.simulation().Step());
  }
  auto got = clients[0]->GetSync("t", "k3_7", {.quorum = 2});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.row.GetValue("v").value_or(""), "7");
}

}  // namespace
}  // namespace mvstore

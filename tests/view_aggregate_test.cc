// Aggregate views (ISSUE 10): builder validation, the read-time fold, delta
// maintenance of the per-base-key sub-aggregate cells, sharded aggregate
// partitions, the multi-view change-set group, and convergence of every
// aggregate to the fold of the base table under crash + churn chaos.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/nemesis.h"
#include "store/client.h"
#include "store/cluster.h"
#include "store/schema.h"
#include "tests/test_util.h"
#include "view/aggregate.h"
#include "view/scrub.h"
#include "workload/key_generator.h"

namespace mvstore {
namespace {

using store::AggregateFn;
using store::QuerySpec;
using store::ReadConsistency;
using store::ViewDefBuilder;
using store::WriteOptions;
using test::TestCluster;

/// Order table keyed by order id; aggregates grouped by customer.
store::Schema OrderSchema(int shards = 1, bool with_projection = false) {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "order"}).ok());
  auto count = ViewDefBuilder("orders_per_cust")
                   .Base("order")
                   .Key("customer")
                   .Aggregate(AggregateFn::kCount)
                   .Shards(shards)
                   .Build();
  MVSTORE_CHECK(count.ok()) << count.status();
  MVSTORE_CHECK(schema.CreateView(std::move(count).value()).ok());
  auto sum = ViewDefBuilder("qty_per_cust")
                 .Base("order")
                 .Key("customer")
                 .Aggregate(AggregateFn::kSum, "qty")
                 .Shards(shards)
                 .Build();
  MVSTORE_CHECK(sum.ok()) << sum.status();
  MVSTORE_CHECK(schema.CreateView(std::move(sum).value()).ok());
  auto max = ViewDefBuilder("max_qty_per_cust")
                 .Base("order")
                 .Key("customer")
                 .Aggregate(AggregateFn::kMax, "qty")
                 .Shards(shards)
                 .Build();
  MVSTORE_CHECK(max.ok()) << max.status();
  MVSTORE_CHECK(schema.CreateView(std::move(max).value()).ok());
  if (with_projection) {
    auto projection = ViewDefBuilder("orders_by_cust")
                          .Base("order")
                          .Key("customer")
                          .Materialize("qty")
                          .Build();
    MVSTORE_CHECK(projection.ok()) << projection.status();
    MVSTORE_CHECK(schema.CreateView(std::move(projection).value()).ok());
  }
  return schema;
}

std::int64_t SingleValue(const store::ReadResult& result,
                         const ColumnName& column) {
  EXPECT_EQ(result.records.size(), 1u);
  if (result.records.size() != 1) return INT64_MIN;
  EXPECT_TRUE(result.records[0].base_key.empty());
  auto value = result.records[0].cells.GetValue(column);
  EXPECT_TRUE(value.has_value()) << "no '" << column << "' cell";
  if (!value) return INT64_MIN;
  return *view::ParseAggregateValue(*value);
}

// --- builder / schema validation ---------------------------------------

TEST(AggregateSchemaTest, BuilderRejectsIllFormedAggregates) {
  EXPECT_FALSE(ViewDefBuilder("v").Base("t").Key("k")
                   .Aggregate(AggregateFn::kCount, "qty").Build().ok())
      << "count(*) must not take a column";
  EXPECT_FALSE(ViewDefBuilder("v").Base("t").Key("k")
                   .Aggregate(AggregateFn::kSum).Build().ok())
      << "sum needs a column";
  EXPECT_FALSE(ViewDefBuilder("v").Base("t").Key("k")
                   .Aggregate(AggregateFn::kSum, "k").Build().ok())
      << "cannot aggregate the view key itself";
  EXPECT_FALSE(ViewDefBuilder("v").Base("t").Key("k").Materialize("s")
                   .Aggregate(AggregateFn::kCount).Build().ok())
      << "aggregates take no explicit Materialize columns";
}

TEST(AggregateSchemaTest, BuildMaterializesTheAggregateColumn) {
  auto sum = ViewDefBuilder("v").Base("t").Key("k")
                 .Aggregate(AggregateFn::kSum, "qty").Build();
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->materialized_columns, std::vector<ColumnName>{"qty"});
  EXPECT_EQ(sum->AggregateOutputColumn(), "sum(qty)");

  auto count = ViewDefBuilder("v").Base("t").Key("k")
                   .Aggregate(AggregateFn::kCount).Build();
  ASSERT_TRUE(count.ok());
  EXPECT_TRUE(count->materialized_columns.empty());
  EXPECT_EQ(count->AggregateOutputColumn(), "count(*)");
}

TEST(AggregateSchemaTest, CreateViewRevalidatesHandConstructedDefs) {
  store::Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "t"}).ok());
  store::ViewDef def;
  def.name = "v";
  def.base_table = "t";
  def.view_key_column = "k";
  def.aggregate = AggregateFn::kSum;
  def.aggregate_column = "qty";
  // A hand-built sum def whose materialized columns disagree with the
  // aggregate column must be rejected, not silently mis-served.
  def.materialized_columns = {"other"};
  EXPECT_FALSE(schema.CreateView(def).ok());
  def.materialized_columns = {"qty"};
  EXPECT_TRUE(schema.CreateView(def).ok());
}

// --- fold unit tests ----------------------------------------------------

TEST(AggregateFoldTest, ParseRejectsGarbageAndOverflow) {
  EXPECT_EQ(view::ParseAggregateValue("42").value_or(-1), 42);
  EXPECT_EQ(view::ParseAggregateValue("-7").value_or(1), -7);
  EXPECT_FALSE(view::ParseAggregateValue("").has_value());
  EXPECT_FALSE(view::ParseAggregateValue("12x").has_value());
  EXPECT_FALSE(view::ParseAggregateValue("x12").has_value());
  EXPECT_FALSE(
      view::ParseAggregateValue("99999999999999999999999").has_value());
}

TEST(AggregateFoldTest, FoldsEveryFunction) {
  auto make = [](AggregateFn fn, ColumnName col) {
    auto view = ViewDefBuilder("v").Base("t").Key("k")
                    .Aggregate(fn, std::move(col)).Build();
    MVSTORE_CHECK(view.ok());
    return std::move(view).value();
  };
  std::vector<store::ViewRecord> records(3);
  for (int i = 0; i < 3; ++i) {
    records[static_cast<std::size_t>(i)].base_key = "b" + std::to_string(i);
    records[static_cast<std::size_t>(i)].cells.Apply(
        "qty", storage::Cell::Live(std::to_string(5 * (i + 1)),
                                   static_cast<Timestamp>(100 + i)));
  }
  const store::ViewDef count = make(AggregateFn::kCount, "");
  const store::ViewDef sum = make(AggregateFn::kSum, "qty");
  const store::ViewDef min = make(AggregateFn::kMin, "qty");
  const store::ViewDef max = make(AggregateFn::kMax, "qty");
  EXPECT_EQ(view::FoldAggregateRecords(count, records).value, 3);
  EXPECT_EQ(view::FoldAggregateRecords(sum, records).value, 30);
  EXPECT_EQ(view::FoldAggregateRecords(min, records).value, 5);
  EXPECT_EQ(view::FoldAggregateRecords(max, records).value, 15);

  // A record with an unparsable cell is skipped by sum but counted by count.
  records[1].cells.Apply("qty", storage::Cell::Live("oops", 200));
  const view::AggregateFold broken = view::FoldAggregateRecords(sum, records);
  EXPECT_EQ(broken.value, 20);
  EXPECT_EQ(broken.skipped, 1u);
  EXPECT_EQ(view::FoldAggregateRecords(count, records).value, 3);

  // Empty input folds to "no value" -> no client record (SQL GROUP BY).
  EXPECT_FALSE(view::FoldAggregateRecords(sum, {}).has_value);
  EXPECT_TRUE(
      view::FoldedAggregateView(sum, std::vector<store::ViewRecord>{})
          .empty());
}

// --- end-to-end through the client --------------------------------------

TEST(AggregateViewTest, CountAndSumTrackPutsMovesAndDeletes) {
  TestCluster t(test::DefaultTestConfig(), OrderSchema());
  auto client = t.cluster.NewClient();
  for (int k = 0; k < 6; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("order", "o" + std::to_string(k),
                              {{"customer", std::string(k < 4 ? "alice"
                                                              : "bob")},
                               {"qty", std::to_string(10 + k)}},
                              WriteOptions{})
                    .ok());
  }
  t.Quiesce();

  auto count = client->QuerySync(QuerySpec::View("orders_per_cust", "alice"),
                                 {.quorum = 3});
  ASSERT_TRUE(count.ok()) << count.status;
  EXPECT_EQ(SingleValue(count, "count(*)"), 4);
  auto sum = client->QuerySync(QuerySpec::View("qty_per_cust", "alice"),
                               {.quorum = 3});
  ASSERT_TRUE(sum.ok()) << sum.status;
  EXPECT_EQ(SingleValue(sum, "sum(qty)"), 10 + 11 + 12 + 13);
  auto max = client->QuerySync(QuerySpec::View("max_qty_per_cust", "bob"),
                               {.quorum = 3});
  ASSERT_TRUE(max.ok()) << max.status;
  EXPECT_EQ(SingleValue(max, "max(qty)"), 15);
  EXPECT_GT(t.cluster.metrics().view_aggregate_folds, 0u);

  // Delta maintenance: overwrite one qty, move one order to bob, delete one.
  ASSERT_TRUE(client->PutSync("order", "o0", {{"qty", std::string("100")}},
                              WriteOptions{})
                  .ok());
  ASSERT_TRUE(client->PutSync("order", "o1",
                              {{"customer", std::string("bob")}},
                              WriteOptions{})
                  .ok());
  ASSERT_TRUE(
      client->DeleteSync("order", "o2", {"customer"}, WriteOptions{}).ok());
  t.Quiesce();

  count = client->QuerySync(QuerySpec::View("orders_per_cust", "alice"),
                            {.quorum = 3});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(SingleValue(count, "count(*)"), 2);  // o0, o3
  sum = client->QuerySync(QuerySpec::View("qty_per_cust", "alice"),
                          {.quorum = 3});
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(SingleValue(sum, "sum(qty)"), 100 + 13);
  sum = client->QuerySync(QuerySpec::View("qty_per_cust", "bob"),
                          {.quorum = 3});
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(SingleValue(sum, "sum(qty)"), 11 + 14 + 15);
}

TEST(AggregateViewTest, EmptyGroupIsAbsentNotZero) {
  TestCluster t(test::DefaultTestConfig(), OrderSchema());
  auto client = t.cluster.NewClient();
  ASSERT_TRUE(client
                  ->PutSync("order", "o1",
                            {{"customer", std::string("alice")},
                             {"qty", std::string("3")}},
                            WriteOptions{})
                  .ok());
  t.Quiesce();
  auto result = client->QuerySync(QuerySpec::View("orders_per_cust", "nobody"),
                                  {.quorum = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.records.empty());

  // Deleting the last member empties the group again.
  ASSERT_TRUE(
      client->DeleteSync("order", "o1", {"customer"}, WriteOptions{}).ok());
  t.Quiesce();
  result = client->QuerySync(QuerySpec::View("orders_per_cust", "alice"),
                             {.quorum = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.records.empty());
}

TEST(AggregateViewTest, CallerColumnsCannotStarveTheFold) {
  TestCluster t(test::DefaultTestConfig(), OrderSchema());
  auto client = t.cluster.NewClient();
  ASSERT_TRUE(client
                  ->PutSync("order", "o1",
                            {{"customer", std::string("alice")},
                             {"qty", std::string("7")}},
                            WriteOptions{})
                  .ok());
  t.Quiesce();
  // A projection that names neither "qty" nor the output column must still
  // come back as the folded aggregate — HandleViewGet ignores caller
  // columns for aggregate views.
  auto result = client->QuerySync(QuerySpec::View("qty_per_cust", "alice"),
                                  {.quorum = 3, .columns = {"bogus"}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(SingleValue(result, "sum(qty)"), 7);
}

TEST(AggregateViewTest, ShardedAggregateFoldsAcrossSubShards) {
  TestCluster t(test::DefaultTestConfig(), OrderSchema(/*shards=*/8));
  auto client = t.cluster.NewClient();
  const int kRows = 32;
  std::int64_t want = 0;
  for (int k = 0; k < kRows; ++k) {
    want += k;
    ASSERT_TRUE(client
                    ->PutSync("order", "o" + std::to_string(k),
                              {{"customer", std::string("alice")},
                               {"qty", std::to_string(k)}},
                              WriteOptions{})
                    .ok());
  }
  t.Quiesce();
  auto sum = client->QuerySync(QuerySpec::View("qty_per_cust", "alice"),
                               {.quorum = 3});
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(SingleValue(sum, "sum(qty)"), want);
  auto count = client->QuerySync(QuerySpec::View("orders_per_cust", "alice"),
                                 {.quorum = 3});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(SingleValue(count, "count(*)"), kRows);
  EXPECT_GT(t.cluster.metrics().view_scatter_scans, 0u);
}

TEST(AggregateViewTest, BoundedStalenessServesTheFoldedShape) {
  TestCluster t(test::DefaultTestConfig(), OrderSchema());
  auto client = t.cluster.NewClient();
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("order", "o" + std::to_string(k),
                              {{"customer", std::string("alice")},
                               {"qty", std::to_string(k + 1)}},
                              WriteOptions{})
                    .ok());
  }
  t.Quiesce();
  auto result = client->QuerySync(
      QuerySpec::View("qty_per_cust", "alice"),
      {.quorum = 3, .consistency = ReadConsistency::kBoundedStaleness});
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(SingleValue(result, "sum(qty)"), 1 + 2 + 3 + 4);
}

// A Put hitting several views fans its deltas as ONE change-set group: one
// maintenance round, one multi-view group counted, and the pre-image
// collection shared across the same-keyed views.
TEST(AggregateViewTest, MultiViewPutsShareOneChangeSetGroup) {
  TestCluster t(test::DefaultTestConfig(),
                OrderSchema(/*shards=*/1, /*with_projection=*/true));
  auto client = t.cluster.NewClient();
  ASSERT_TRUE(client
                  ->PutSync("order", "o1",
                            {{"customer", std::string("alice")},
                             {"qty", std::string("5")}},
                            WriteOptions{})
                  .ok());
  t.Quiesce();
  // customer+qty touch all four views of the schema.
  EXPECT_GT(t.cluster.metrics().prop_multi_view_groups, 0u);

  // Every surface of the same change-set agrees after one round.
  auto sum = client->QuerySync(QuerySpec::View("qty_per_cust", "alice"),
                               {.quorum = 3});
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(SingleValue(sum, "sum(qty)"), 5);
  auto projection = client->QuerySync(QuerySpec::View("orders_by_cust",
                                                      "alice"),
                                      {.quorum = 3});
  ASSERT_TRUE(projection.ok());
  ASSERT_EQ(projection.records.size(), 1u);
  EXPECT_EQ(projection.records[0].cells.GetValue("qty").value_or(""), "5");
}

// --- the acceptance nemesis: crash + churn + duplicated/reordered deltas --

TEST(AggregateViewPropertyTest, ConvergesToBaseFoldUnderCrashAndChurn) {
  const std::uint64_t seed = 29;
  store::ClusterConfig config = test::DefaultTestConfig();
  config.seed = seed;
  config.max_servers = 6;
  config.rpc_timeout = Millis(50);
  config.anti_entropy_interval = Millis(250);
  config.hint_replay_interval = Millis(100);
  config.view_scrub_interval = Millis(300);
  TestCluster t(config, OrderSchema(/*shards=*/4));
  const int kOrders = 36;
  const int kCustomers = 4;
  for (int k = 0; k < kOrders; ++k) {
    t.cluster.BootstrapLoadRow(
        "order", workload::FormatKey("o", static_cast<std::uint64_t>(k)),
        {{"customer", "c" + std::to_string(k % kCustomers)},
         {"qty", std::to_string(k)}},
        100 + k);
  }

  sim::Nemesis nemesis(
      &t.cluster.simulation(), &t.cluster.network(),
      [&t](sim::EndpointId s) { t.cluster.CrashServer(s); },
      [&t](sim::EndpointId s) { t.cluster.RestartServer(s); });
  nemesis.SetMembershipCallbacks(
      [&t] { t.cluster.JoinServer(); },
      [&t](sim::EndpointId s) { t.cluster.DecommissionServer(s); });
  sim::NemesisOptions options;
  options.horizon = Seconds(3);
  options.num_servers = t.cluster.num_servers();
  options.crashes = 2;
  options.min_downtime = Millis(150);
  options.max_downtime = Millis(500);
  options.partitions = 1;  // partitions duplicate and reorder deltas
  options.membership_churn = 1;
  options.min_churn_gap = Millis(500);
  options.max_churn_gap = Seconds(1);
  nemesis.Schedule(sim::GenerateRandomSchedule(Rng(seed * 13), options));
  nemesis.HealAllAt(options.horizon);

  // Zipfian updates: hot orders get re-priced and re-assigned while reads
  // fold the aggregates mid-chaos (results unchecked — the chaos makes any
  // single answer legal; convergence below is the assertion).
  Rng rng(seed * 101);
  workload::ZipfianKeyGenerator orders("o", kOrders, 0.99);
  workload::ZipfianKeyGenerator customers("c", kCustomers, 0.99);
  std::vector<std::unique_ptr<store::Client>> clients;
  std::function<void(int)> issue = [&](int c) {
    auto next = [&issue, c](bool) { issue(c); };
    const double roll = rng.NextDouble();
    if (roll < 0.5) {
      clients[c]->Put("order", orders.Next(rng),
                      {{"customer", customers.Next(rng)},
                       {"qty", std::to_string(rng.UniformInt(0, 49))}},
                      {.quorum = 1},
                      [next](store::WriteResult w) { next(w.ok()); });
    } else if (roll < 0.6) {
      clients[c]->Delete("order", orders.Next(rng), {"customer"},
                         {.quorum = 1},
                         [next](store::WriteResult w) { next(w.ok()); });
    } else {
      const char* view = roll < 0.8 ? "qty_per_cust" : "orders_per_cust";
      clients[c]->Query(QuerySpec::View(view, customers.Next(rng)), {},
                        [next](store::ReadResult r) { next(r.ok()); });
    }
  };
  for (int c = 0; c < 3; ++c) {
    clients.push_back(t.cluster.NewClient(c));
    clients.back()->set_request_timeout(Millis(120));
    issue(c);
  }
  t.cluster.RunFor(options.horizon + Millis(500));
  issue = [](int) {};  // stop the loops

  const store::Metrics& m = t.cluster.metrics();
  for (int i = 0; i < 100 &&
                  (m.member_joins_completed < m.member_joins_started ||
                   m.member_leaves_completed < m.member_leaves_started);
       ++i) {
    t.cluster.RunFor(Millis(100));
  }
  t.views->Quiesce();
  t.cluster.RunFor(Seconds(2));
  t.Quiesce();

  // Every aggregate view: structurally clean, and the client-visible fold
  // equals the fold of Definition 1 evaluated on the merged base table.
  auto client = t.cluster.NewClient();
  for (const char* view_name :
       {"orders_per_cust", "qty_per_cust", "max_qty_per_cust"}) {
    const store::ViewDef* view = t.cluster.schema().GetView(view_name);
    ASSERT_NE(view, nullptr);
    view::ScrubReport report = view::CheckView(t.cluster, *view);
    EXPECT_TRUE(report.clean()) << view_name << ": " << report.Summary();

    // Group Definition 1's expected records by view key and fold each group.
    std::map<Key, std::vector<store::ViewRecord>> expected_groups;
    for (const view::ExpectedRecord& rec :
         view::ComputeExpectedView(t.cluster, *view)) {
      store::ViewRecord r;
      r.base_key = rec.base_key;
      r.cells = rec.cells;
      expected_groups[rec.view_key].push_back(std::move(r));
    }
    for (int c = 0; c < kCustomers; ++c) {
      const Key customer = "c" + std::to_string(c);
      auto result = client->QuerySync(QuerySpec::View(view_name, customer),
                                      {.quorum = 3});
      ASSERT_TRUE(result.ok()) << view_name << "/" << customer << ": "
                               << result.status;
      const view::AggregateFold want =
          view::FoldAggregateRecords(*view, expected_groups[customer]);
      if (!want.has_value) {
        EXPECT_TRUE(result.records.empty())
            << view_name << "/" << customer << " should be empty";
        continue;
      }
      EXPECT_EQ(SingleValue(result, view->AggregateOutputColumn()),
                want.value)
          << view_name << "/" << customer;
    }
  }
  EXPECT_GT(m.view_aggregate_folds, 0u);
}

}  // namespace
}  // namespace mvstore

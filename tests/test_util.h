// Shared fixtures for mvstore tests.
//
// TestCluster bundles a small simulated cluster with the view-maintenance
// engine installed and the help-desk schema from the paper's Figure 1
// (table "ticket" keyed by ticket id, view "assigned_to" keyed by the
// assignee, native index on the same column for baseline comparisons).

#ifndef MVSTORE_TESTS_TEST_UTIL_H_
#define MVSTORE_TESTS_TEST_UTIL_H_

#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "store/client.h"
#include "store/cluster.h"
#include "store/config.h"
#include "store/schema.h"
#include "view/maintenance_engine.h"

namespace mvstore::test {

/// Makes propagation dispatch deterministic and fast: tasks dispatch in
/// submission order after a constant short delay.
inline void FastPropagation(store::ClusterConfig& config) {
  config.perf.propagation_dispatch_mu = std::log(500.0);  // 0.5 ms
  config.perf.propagation_dispatch_sigma = 0.0;
  config.perf.propagation_dispatch_min = Micros(500);
  config.perf.propagation_retry_delay = Millis(1);
}

inline store::ClusterConfig DefaultTestConfig() {
  store::ClusterConfig config;
  config.num_servers = 4;
  config.replication_factor = 3;
  config.seed = 20130401;  // DMC'13 workshop month
  FastPropagation(config);
  return config;
}

/// The paper's Figure 1 schema. `view_shards` > 1 declares the view with
/// that many sub-shards per view key (scatter-gather reads, ISSUE 9).
inline store::Schema TicketSchema(bool with_index = true,
                                  bool with_view = true, int view_shards = 1) {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "ticket"}).ok());
  if (with_index) {
    MVSTORE_CHECK(
        schema.CreateIndex({.table = "ticket", .column = "assigned_to"}).ok());
  }
  if (with_view) {
    auto view = store::ViewDefBuilder("assigned_to_view")
                    .Base("ticket")
                    .Key("assigned_to")
                    .Materialize("status")
                    .Shards(view_shards)
                    .Build();
    MVSTORE_CHECK(view.ok()) << view.status();
    MVSTORE_CHECK(schema.CreateView(std::move(view).value()).ok());
  }
  return schema;
}

struct TestCluster {
  explicit TestCluster(store::ClusterConfig config = DefaultTestConfig(),
                       store::Schema schema = TicketSchema())
      : cluster(std::move(config), std::move(schema)),
        views(std::make_unique<view::MaintenanceEngine>(&cluster)) {
    cluster.Start();
  }

  /// Runs the simulation until all pending view propagations finish, then a
  /// grace period so trailing messages (read repair, session notices) land.
  void Quiesce() {
    views->Quiesce();
    cluster.RunFor(Millis(100));
  }

  store::Cluster cluster;
  std::unique_ptr<view::MaintenanceEngine> views;
};

/// The view definition of the TicketSchema.
inline const store::ViewDef& TicketView(store::Cluster& cluster) {
  const store::ViewDef* view = cluster.schema().GetView("assigned_to_view");
  MVSTORE_CHECK(view != nullptr);
  return *view;
}

}  // namespace mvstore::test

#endif  // MVSTORE_TESTS_TEST_UTIL_H_

// Consistent-hash ring: replica selection, determinism, balance, and
// stability properties.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "store/ring.h"

namespace mvstore::store {
namespace {

TEST(RingTest, ReplicasAreDistinctAndComplete) {
  Ring ring(4, 32, 1);
  for (int i = 0; i < 200; ++i) {
    auto replicas = ring.ReplicasFor("key" + std::to_string(i), 3);
    ASSERT_EQ(replicas.size(), 3u);
    std::set<ServerId> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);
    for (ServerId s : replicas) EXPECT_LT(s, 4u);
  }
}

TEST(RingTest, FullReplicationCoversAllServers) {
  Ring ring(5, 16, 2);
  auto replicas = ring.ReplicasFor("anything", 5);
  std::set<ServerId> unique(replicas.begin(), replicas.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RingTest, DeterministicAcrossInstances) {
  Ring a(4, 32, 77);
  Ring b(4, 32, 77);
  for (int i = 0; i < 100; ++i) {
    const Key key = "k" + std::to_string(i);
    EXPECT_EQ(a.ReplicasFor(key, 3), b.ReplicasFor(key, 3));
  }
}

TEST(RingTest, SeedChangesPlacement) {
  Ring a(4, 32, 1);
  Ring b(4, 32, 2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    const Key key = "k" + std::to_string(i);
    if (a.ReplicasFor(key, 3) != b.ReplicasFor(key, 3)) ++differing;
  }
  EXPECT_GT(differing, 50);
}

TEST(RingTest, PrimaryLoadIsRoughlyBalanced) {
  Ring ring(4, 64, 3);
  std::map<ServerId, int> load;
  constexpr int kKeys = 8000;
  for (int i = 0; i < kKeys; ++i) {
    load[ring.PrimaryFor("key" + std::to_string(i))]++;
  }
  for (const auto& [server, count] : load) {
    // Within 40% of fair share (vnodes smooth but do not equalize).
    EXPECT_GT(count, kKeys / 4 * 0.6) << "server " << server;
    EXPECT_LT(count, kKeys / 4 * 1.4) << "server " << server;
  }
}

TEST(RingTest, PrimaryIsFirstReplica) {
  Ring ring(4, 32, 4);
  for (int i = 0; i < 50; ++i) {
    const Key key = "k" + std::to_string(i);
    EXPECT_EQ(ring.PrimaryFor(key), ring.ReplicasFor(key, 3)[0]);
  }
}

TEST(RingTest, SingleServerRing) {
  Ring ring(1, 8, 5);
  EXPECT_EQ(ring.ReplicasFor("x", 1), (std::vector<ServerId>{0}));
}

TEST(RingTest, ReplicationFactorEqualToMembershipIsExact) {
  // n == num_servers: every key's replica set is the full membership, in
  // some preference order, with no duplicates — including on a ring that
  // grew to that size incrementally.
  Ring ring(3, 16, 6);
  ring.AddServer(3, 4);
  for (int i = 0; i < 100; ++i) {
    auto replicas = ring.ReplicasFor("k" + std::to_string(i), 4);
    ASSERT_EQ(replicas.size(), 4u);
    EXPECT_EQ(std::set<ServerId>(replicas.begin(), replicas.end()),
              (std::set<ServerId>{0, 1, 2, 3}));
  }
}

TEST(RingTest, IdenticalRebuildsShareEveryTokenRange) {
  // Token-level determinism: two rings built from the same (seed, members)
  // agree on every server's replicated ranges, not just on placements.
  Ring a(4, 32, 11);
  Ring b(4, 32, 11);
  for (ServerId s = 0; s < 4; ++s) {
    const auto ra = a.RangesReplicatedOn(s, 3);
    const auto rb = b.RangesReplicatedOn(s, 3);
    ASSERT_EQ(ra.size(), rb.size()) << "server " << s;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_TRUE(ra[i] == rb[i]) << "server " << s << " range " << i;
    }
  }
}

TEST(RingTest, IncrementallyGrownRingMatchesRebuiltRing) {
  // Per-server token streams make the ring a pure function of
  // (seed, member set): growing 3 -> 5 one join at a time lands exactly on
  // the ring built with 5 members from scratch.
  Ring grown(3, 32, 13);
  grown.AddServer(3, 3);
  grown.AddServer(4, 3);
  Ring rebuilt(5, 32, 13);
  for (int i = 0; i < 300; ++i) {
    const Key key = "k" + std::to_string(i);
    EXPECT_EQ(grown.ReplicasFor(key, 3), rebuilt.ReplicasFor(key, 3)) << key;
  }
  for (ServerId s = 0; s < 5; ++s) {
    const auto ga = grown.RangesReplicatedOn(s, 3);
    const auto ra = rebuilt.RangesReplicatedOn(s, 3);
    ASSERT_EQ(ga.size(), ra.size()) << "server " << s;
    for (std::size_t i = 0; i < ga.size(); ++i) {
      EXPECT_TRUE(ga[i] == ra[i]) << "server " << s << " range " << i;
    }
  }
}

TEST(RingTest, ShrunkRingMatchesRebuiltRing) {
  Ring shrunk(5, 32, 13);
  shrunk.RemoveServer(4, 3);
  Ring rebuilt(4, 32, 13);
  for (int i = 0; i < 300; ++i) {
    const Key key = "k" + std::to_string(i);
    EXPECT_EQ(shrunk.ReplicasFor(key, 3), rebuilt.ReplicasFor(key, 3)) << key;
  }
}

TEST(RingTest, AddServerTransfersCoverEveryRangeTheJoinerOwns) {
  Ring ring(4, 32, 17);
  const auto transfers = ring.AddServer(4, 3);
  ASSERT_FALSE(transfers.empty());
  for (const auto& transfer : transfers) {
    // Sources exist, exclude the joiner, and are members.
    ASSERT_FALSE(transfer.peers.empty());
    for (ServerId peer : transfer.peers) {
      EXPECT_NE(peer, 4u);
      EXPECT_TRUE(ring.IsMember(peer));
    }
  }
  // Every key the joiner now replicates falls in some transferred range.
  for (int i = 0; i < 500; ++i) {
    const Key key = "k" + std::to_string(i);
    const auto replicas = ring.ReplicasFor(key, 3);
    if (std::find(replicas.begin(), replicas.end(), ServerId{4}) ==
        replicas.end()) {
      continue;
    }
    const std::uint64_t token = Ring::TokenOf(key);
    bool covered = false;
    for (const auto& transfer : transfers) {
      if (transfer.range.Covers(token)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << key;
  }
}

TEST(RingTest, AddServerToSingleServerRingStreamsFromIt) {
  // Replication factor 1 is the tight case: the sole source of every
  // transferred range is the server the data is moving OFF of.
  Ring ring(1, 8, 19);
  const auto transfers = ring.AddServer(1, 1);
  ASSERT_FALSE(transfers.empty());
  for (const auto& transfer : transfers) {
    EXPECT_EQ(transfer.peers, (std::vector<ServerId>{0}));
  }
}

TEST(RingTest, RemoveServerTransfersCoverEveryRangeTheLeaverHeld) {
  Ring before(5, 32, 23);
  const auto leaver_ranges = before.RangesReplicatedOn(4, 3);
  Ring ring(5, 32, 23);
  const auto transfers = ring.RemoveServer(4, 3);
  EXPECT_FALSE(ring.IsMember(4));
  for (const auto& transfer : transfers) {
    for (ServerId peer : transfer.peers) {
      EXPECT_NE(peer, 4u);
      EXPECT_TRUE(ring.IsMember(peer));
    }
  }
  // Any token the leaver used to replicate is covered by some transfer.
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t token = Ring::TokenOf("k" + std::to_string(i));
    bool held = false;
    for (const auto& range : leaver_ranges) {
      if (range.Covers(token)) {
        held = true;
        break;
      }
    }
    if (!held) continue;
    bool covered = false;
    for (const auto& transfer : transfers) {
      if (transfer.range.Covers(token)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "k" << i;
  }
}

}  // namespace
}  // namespace mvstore::store

// Consistent-hash ring: replica selection, determinism, balance, and
// stability properties.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "store/ring.h"

namespace mvstore::store {
namespace {

TEST(RingTest, ReplicasAreDistinctAndComplete) {
  Ring ring(4, 32, 1);
  for (int i = 0; i < 200; ++i) {
    auto replicas = ring.ReplicasFor("key" + std::to_string(i), 3);
    ASSERT_EQ(replicas.size(), 3u);
    std::set<ServerId> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);
    for (ServerId s : replicas) EXPECT_LT(s, 4u);
  }
}

TEST(RingTest, FullReplicationCoversAllServers) {
  Ring ring(5, 16, 2);
  auto replicas = ring.ReplicasFor("anything", 5);
  std::set<ServerId> unique(replicas.begin(), replicas.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RingTest, DeterministicAcrossInstances) {
  Ring a(4, 32, 77);
  Ring b(4, 32, 77);
  for (int i = 0; i < 100; ++i) {
    const Key key = "k" + std::to_string(i);
    EXPECT_EQ(a.ReplicasFor(key, 3), b.ReplicasFor(key, 3));
  }
}

TEST(RingTest, SeedChangesPlacement) {
  Ring a(4, 32, 1);
  Ring b(4, 32, 2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    const Key key = "k" + std::to_string(i);
    if (a.ReplicasFor(key, 3) != b.ReplicasFor(key, 3)) ++differing;
  }
  EXPECT_GT(differing, 50);
}

TEST(RingTest, PrimaryLoadIsRoughlyBalanced) {
  Ring ring(4, 64, 3);
  std::map<ServerId, int> load;
  constexpr int kKeys = 8000;
  for (int i = 0; i < kKeys; ++i) {
    load[ring.PrimaryFor("key" + std::to_string(i))]++;
  }
  for (const auto& [server, count] : load) {
    // Within 40% of fair share (vnodes smooth but do not equalize).
    EXPECT_GT(count, kKeys / 4 * 0.6) << "server " << server;
    EXPECT_LT(count, kKeys / 4 * 1.4) << "server " << server;
  }
}

TEST(RingTest, PrimaryIsFirstReplica) {
  Ring ring(4, 32, 4);
  for (int i = 0; i < 50; ++i) {
    const Key key = "k" + std::to_string(i);
    EXPECT_EQ(ring.PrimaryFor(key), ring.ReplicasFor(key, 3)[0]);
  }
}

TEST(RingTest, SingleServerRing) {
  Ring ring(1, 8, 5);
  EXPECT_EQ(ring.ReplicasFor("x", 1), (std::vector<ServerId>{0}));
}

}  // namespace
}  // namespace mvstore::store

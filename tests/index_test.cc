// Native secondary indexes: local-fragment unit tests plus end-to-end
// broadcast queries, synchronous maintenance, and stale-hit filtering.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "index/local_index.h"
#include "store/client.h"
#include "tests/test_util.h"

namespace mvstore {
namespace {

TEST(LocalIndexTest, InsertLookupRemove) {
  index::LocalIndex index("t", "c");
  index.Update("k1", std::nullopt, std::string("red"));
  index.Update("k2", std::nullopt, std::string("red"));
  index.Update("k3", std::nullopt, std::string("blue"));
  EXPECT_EQ(index.Lookup("red"), (std::vector<Key>{"k1", "k2"}));
  EXPECT_EQ(index.Lookup("blue"), (std::vector<Key>{"k3"}));
  EXPECT_EQ(index.entries(), 3u);
  EXPECT_EQ(index.distinct_values(), 2u);

  index.Update("k1", std::string("red"), std::string("blue"));
  EXPECT_EQ(index.Lookup("red"), (std::vector<Key>{"k2"}));
  EXPECT_EQ(index.Lookup("blue"), (std::vector<Key>{"k1", "k3"}));

  index.Update("k2", std::string("red"), std::nullopt);
  EXPECT_TRUE(index.Lookup("red").empty());
  EXPECT_EQ(index.distinct_values(), 1u);
}

TEST(LocalIndexTest, NoopUpdateIgnored) {
  index::LocalIndex index("t", "c");
  index.Update("k", std::string("v"), std::string("v"));
  EXPECT_TRUE(index.Lookup("v").empty());  // old==new: nothing recorded
}

TEST(LocalIndexTest, UnknownValueLookupIsEmpty) {
  index::LocalIndex index("t", "c");
  EXPECT_TRUE(index.Lookup("ghost").empty());
}

TEST(IndexEndToEndTest, LookupBySecondaryKey) {
  test::TestCluster tc;
  for (int i = 0; i < 20; ++i) {
    tc.cluster.BootstrapLoadRow(
        "ticket", "t" + std::to_string(i),
        {{"assigned_to", std::string(i % 2 == 0 ? "alice" : "bob")},
         {"status", std::string("open")}},
        100 + i);
  }
  auto client = tc.cluster.NewClient();
  auto rows = client->QuerySync(
      store::QuerySpec::Index("ticket", "assigned_to", "alice"),
      store::ReadOptions{});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.rows.size(), 10u);
  for (const auto& kr : rows.rows) {
    EXPECT_EQ(kr.row.GetValue("assigned_to").value_or(""), "alice");
  }
}

TEST(IndexEndToEndTest, IndexMaintainedSynchronouslyOnWrites) {
  test::TestCluster tc;
  auto client = tc.cluster.NewClient();
  ASSERT_TRUE(client
                  ->PutSync("ticket", "9",
                            {{"assigned_to", std::string("carol")},
                             {"status", std::string("new")}}, {.quorum = 3})
.ok());
  // No quiescing: native index maintenance is synchronous with the write.
  auto rows = client->QuerySync(
      store::QuerySpec::Index("ticket", "assigned_to", "carol"),
      store::ReadOptions{});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0].key, "9");

  // Reassign: the old posting disappears, the new one appears.
  ASSERT_TRUE(client
                  ->PutSync("ticket", "9", {{"assigned_to", std::string("dave")}}, {.quorum = 3})
.ok());
  auto old_rows = client->QuerySync(
      store::QuerySpec::Index("ticket", "assigned_to", "carol"),
      store::ReadOptions{});
  ASSERT_TRUE(old_rows.ok());
  EXPECT_TRUE(old_rows.rows.empty());
  auto new_rows = client->QuerySync(
      store::QuerySpec::Index("ticket", "assigned_to", "dave"),
      store::ReadOptions{});
  ASSERT_TRUE(new_rows.ok());
  EXPECT_EQ(new_rows.rows.size(), 1u);
}

TEST(IndexEndToEndTest, DeletedColumnLeavesIndex) {
  test::TestCluster tc;
  auto client = tc.cluster.NewClient();
  ASSERT_TRUE(client
                  ->PutSync("ticket", "9", {{"assigned_to", std::string("eve")}}, {.quorum = 3})
.ok());
  ASSERT_TRUE(client->DeleteSync("ticket", "9", {"assigned_to"}, {.quorum = 3})
.ok());
  tc.Quiesce();
  auto rows = client->QuerySync(
      store::QuerySpec::Index("ticket", "assigned_to", "eve"),
      store::ReadOptions{});
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows.rows.empty());
}

TEST(IndexEndToEndTest, StaleFragmentHitsConvergeViaAntiEntropy) {
  // A fragment on a lagging replica can return a stale hit — native indexes
  // are only as consistent as the replicas they index. Once anti-entropy
  // brings the replica up to date, its fragment self-corrects (index
  // maintenance is synchronous with the local apply).
  store::ClusterConfig config = test::DefaultTestConfig();
  config.anti_entropy_interval = Seconds(1);
  test::TestCluster tc(config);
  tc.cluster.BootstrapLoadRow("ticket", "5",
                              {{"assigned_to", std::string("frank")}}, 100);
  // Update ONE replica only (simulating lost replication messages).
  const auto replicas = tc.cluster.server(0).ReplicasOf("ticket", "5");
  storage::Row newer;
  newer.Apply("assigned_to",
              storage::Cell::Live("grace", store::kClientTimestampEpoch + 1));
  tc.cluster.server(replicas[0]).LocalApply("ticket", "5", newer);

  auto client = tc.cluster.NewClient();
  // The new value is immediately findable through the updated fragment.
  auto current = client->QuerySync(
      store::QuerySpec::Index("ticket", "assigned_to", "grace"),
      store::ReadOptions{});
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current.rows.size(), 1u);
  // The old value still surfaces through the lagging fragments (the merged
  // row the coordinator sees from them predates the update).
  auto stale = client->QuerySync(
      store::QuerySpec::Index("ticket", "assigned_to", "frank"),
      store::ReadOptions{});
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale.rows.size(), 1u);

  // After anti-entropy converges the replicas, the stale posting is gone.
  tc.cluster.RunFor(Seconds(3));
  auto after = client->QuerySync(
      store::QuerySpec::Index("ticket", "assigned_to", "frank"),
      store::ReadOptions{});
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.rows.empty());
}

TEST(IndexEndToEndTest, MissingIndexErrors) {
  test::TestCluster tc;
  auto client = tc.cluster.NewClient();
  auto rows = client->QuerySync(
      store::QuerySpec::Index("ticket", "status", "open"),
      store::ReadOptions{});
  EXPECT_TRUE(rows.status.IsNotFound());
}

TEST(IndexEndToEndTest, BroadcastTouchesEveryServer) {
  test::TestCluster tc;
  tc.cluster.BootstrapLoadRow("ticket", "1",
                              {{"assigned_to", std::string("x")}}, 100);
  auto client = tc.cluster.NewClient();
  const std::uint64_t probes_before =
      tc.cluster.metrics().index_fragment_probes;
  ASSERT_TRUE(client->QuerySync(
      store::QuerySpec::Index("ticket", "assigned_to", "x"),
      store::ReadOptions{}).ok());
  EXPECT_EQ(tc.cluster.metrics().index_fragment_probes - probes_before,
            static_cast<std::uint64_t>(tc.cluster.num_servers()));
}

TEST(IndexEndToEndTest, UnavailableWhenAFragmentIsDown) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.rpc_timeout = Millis(50);
  test::TestCluster tc(config);
  tc.cluster.network().SetEndpointDown(3, true);
  auto client = tc.cluster.NewClient(0);
  auto rows = client->QuerySync(
      store::QuerySpec::Index("ticket", "assigned_to", "x"),
      store::ReadOptions{});
  EXPECT_TRUE(rows.status.IsUnavailable());
}

}  // namespace
}  // namespace mvstore

// Crash-stop fault model, end to end: commit-log durability at the engine,
// Server::Crash/Restart semantics (in-flight op aborts, WAL replay), lock
// lease expiry for holds stranded by a crashed coordinator, owned-range
// scrub recovery of orphaned propagations, and the chaos invariant — after
// a seeded nemesis run heals and the cluster quiesces, every view equals
// the Definition-1 recomputation of its base table.

#include <gtest/gtest.h>

#include <array>
#include <bitset>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "sim/nemesis.h"
#include "storage/engine.h"
#include "store/client.h"
#include "tests/test_util.h"
#include "view/scrub.h"

namespace mvstore {
namespace {

using storage::Cell;

// --------------------------------------------------------------------------
// Engine-level commit log.
// --------------------------------------------------------------------------

TEST(EngineWalTest, CrashLosesMemtableAndRecoveryReplaysIt) {
  storage::Engine engine;
  engine.Apply("k1", "c", Cell::Live("v1", 10));
  engine.Apply("k2", "c", Cell::Live("v2", 11));
  ASSERT_EQ(engine.commit_log_cells(), 2u);

  engine.LoseVolatileState();
  EXPECT_FALSE(engine.GetRow("k1").has_value()) << "memtable must be gone";

  EXPECT_EQ(engine.RecoverFromLog(), 2u);
  auto row = engine.GetRow("k1");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetValue("c"), "v1");
  EXPECT_EQ(engine.GetRow("k2")->GetValue("c"), "v2");
}

TEST(EngineWalTest, FlushCheckpointsTheLog) {
  storage::Engine engine;
  engine.Apply("k1", "c", Cell::Live("v1", 10));
  engine.Flush();
  EXPECT_EQ(engine.commit_log_cells(), 0u) << "flush truncates the log";

  engine.Apply("k2", "c", Cell::Live("v2", 11));
  engine.LoseVolatileState();
  EXPECT_EQ(engine.RecoverFromLog(), 1u) << "only the unflushed suffix";
  // The flushed cell survives in the durable run; the logged one replays.
  EXPECT_EQ(engine.GetRow("k1")->GetValue("c"), "v1");
  EXPECT_EQ(engine.GetRow("k2")->GetValue("c"), "v2");
}

TEST(EngineWalTest, CappedLogDropsOldestCells) {
  storage::EngineOptions options;
  options.commit_log_max_cells = 2;
  storage::Engine engine(options);
  for (int i = 0; i < 5; ++i) {
    engine.Apply("k" + std::to_string(i), "c",
                 Cell::Live("v" + std::to_string(i), 10 + i));
  }
  EXPECT_EQ(engine.commit_log_cells(), 2u);
  EXPECT_EQ(engine.commit_log_cells_dropped(), 3u);

  engine.LoseVolatileState();
  EXPECT_EQ(engine.RecoverFromLog(), 2u);
  EXPECT_FALSE(engine.GetRow("k0").has_value()) << "dropped from the log";
  EXPECT_EQ(engine.GetRow("k4")->GetValue("c"), "v4");
}

TEST(EngineWalTest, DisabledLogLosesAcknowledgedWrites) {
  storage::EngineOptions options;
  options.commit_log_enabled = false;
  storage::Engine engine(options);
  engine.Apply("k1", "c", Cell::Live("v1", 10));
  engine.LoseVolatileState();
  EXPECT_EQ(engine.RecoverFromLog(), 0u);
  EXPECT_FALSE(engine.GetRow("k1").has_value());
}

// --------------------------------------------------------------------------
// Server crash/restart.
// --------------------------------------------------------------------------

TEST(CrashRecoveryTest, RestartReplaysCommitLogAndDataSurvives) {
  test::TestCluster t;
  auto client = t.cluster.NewClient(/*coordinator=*/1);
  // Full-quorum writes so server 0 definitely holds every row.
  for (int k = 0; k < 6; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "t" + std::to_string(k),
                              {{"assigned_to", std::string("alice")},
                               {"status", std::string("open")}},
                              {.quorum = 3})
                    .ok());
  }
  t.Quiesce();

  t.cluster.CrashServer(0);
  t.cluster.RunFor(Millis(50));
  t.cluster.RestartServer(0);
  t.cluster.RunFor(Millis(50));

  EXPECT_EQ(t.cluster.metrics().server_crashes, 1u);
  EXPECT_EQ(t.cluster.metrics().server_restarts, 1u);
  EXPECT_GT(t.cluster.metrics().wal_cells_replayed, 0u)
      << "server 0 replicated rows from its memtable via the commit log";

  // Server 0's replica is intact: read it directly.
  for (int k = 0; k < 6; ++k) {
    const Key key = "t" + std::to_string(k);
    auto local = t.cluster.server(0).EngineFor("ticket").GetRow(key);
    if (!local.has_value()) continue;  // not a replica of this key
    EXPECT_EQ((*local).GetValue("assigned_to"), "alice") << key;
  }
  auto row = client->GetSync("ticket", "t0",
                             {.quorum = 3, .columns = {"status"}});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.row.GetValue("status"), "open");
}

TEST(CrashRecoveryTest, CrashAbortsInflightCoordinatorOps) {
  test::TestCluster t;
  t.cluster.BootstrapLoadRow("ticket", "t0",
                             {{"assigned_to", std::string("alice")},
                              {"status", std::string("open")}},
                             100);
  auto client = t.cluster.NewClient(/*coordinator=*/0);
  client->set_request_timeout(Millis(500));

  // Pin the write in flight: one replica is unreachable, so a full-quorum
  // Put sits at the coordinator waiting out the rpc timeout.
  const auto replicas = t.cluster.server(0).ReplicasOf("ticket", "t0");
  ServerId slow = replicas[0] != 0 ? replicas[0] : replicas[1];
  t.cluster.network().SetEndpointDown(slow, true);

  bool replied = false;
  Status result = Status::OK();
  client->Put("ticket", "t0", {{"status", std::string("closed")}},
              {.quorum = 3}, [&replied, &result](store::WriteResult w) {
                replied = true;
                result = w.status;
              });
  // Let the request reach the coordinator, then kill it mid-operation.
  t.cluster.RunFor(Millis(5));
  t.cluster.CrashServer(0);
  EXPECT_GT(t.cluster.metrics().inflight_ops_aborted, 0u);

  // A dead coordinator cannot answer; the client's own deadline resolves
  // the call.
  t.cluster.network().SetEndpointDown(slow, false);
  t.cluster.RunFor(Seconds(1));
  ASSERT_TRUE(replied);
  EXPECT_FALSE(result.ok());
}

// --------------------------------------------------------------------------
// Lock leases + owned-range scrub: the ISSUE's acceptance scenario. A
// coordinator crashes while holding view-propagation locks; the lease TTL
// reclaims them, the orphaned propagations never finish, and the periodic
// owned-range scrub re-derives the affected view rows — bounded-time
// recovery, visible in the fault counters.
// --------------------------------------------------------------------------

TEST(CrashRecoveryTest, CrashedLockHolderIsReclaimedAndScrubConverges) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.propagation_mode = store::PropagationMode::kLockService;
  config.lock_lease_ttl = Millis(50);
  config.view_scrub_interval = Millis(200);
  config.anti_entropy_interval = Millis(300);
  test::TestCluster t(config);
  for (int k = 0; k < 8; ++k) {
    t.cluster.BootstrapLoadRow(
        "ticket", "t" + std::to_string(k),
        {{"assigned_to", "a" + std::to_string(k % 3)},
         {"status", std::string("open")}},
        100 + k);
  }

  auto client = t.cluster.NewClient(/*coordinator=*/0);
  client->set_request_timeout(Millis(100));
  for (int k = 0; k < 8; ++k) {
    client->Put("ticket", "t" + std::to_string(k),
                {{"assigned_to", "b" + std::to_string(k)}}, {.quorum = 1},
                [](store::WriteResult) {});
  }
  // Step until some propagation from server 0 holds its lock, then crash
  // the coordinator: the holds are stranded (a dead process cannot send
  // Release) and its propagations are orphaned.
  while (t.views->lock_service().holds_outstanding() == 0) {
    ASSERT_TRUE(t.cluster.simulation().Step()) << "no lock ever granted";
  }
  t.cluster.CrashServer(0);
  EXPECT_GT(t.cluster.metrics().propagations_orphaned, 0u);

  // The lease TTL bounds how long the stranded holds persist.
  t.cluster.RunFor(Millis(100));
  EXPECT_GT(t.cluster.metrics().locks_expired, 0u)
      << "stranded holds must be reclaimed within the lease TTL";

  t.cluster.RestartServer(0);
  t.Quiesce();
  t.cluster.RunFor(Millis(800));  // > 2 scrub periods + anti-entropy rounds

  EXPECT_GT(t.cluster.metrics().orphaned_propagations_recovered, 0u)
      << "the owned-range scrub must repair the orphaned families";

  // Value-level convergence: the view equals the Definition-1 recomputation.
  auto expected = view::ComputeExpectedView(t.cluster, test::TicketView(t.cluster));
  auto exposed = view::ReadConvergedView(t.cluster, test::TicketView(t.cluster));
  ASSERT_EQ(expected.size(), exposed.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].view_key, exposed[i].view_key);
    EXPECT_EQ(expected[i].base_key, exposed[i].base_key);
    EXPECT_EQ(expected[i].cells.GetValue("status"),
              exposed[i].cells.GetValue("status"))
        << expected[i].base_key;
  }
}

// --------------------------------------------------------------------------
// Chaos invariant: a seeded nemesis (crashes, partitions, drop surges,
// latency spikes) over a live workload; after healing and quiescence the
// views must equal recomputation for every seed.
// --------------------------------------------------------------------------

TEST(CrashRecoveryTest, ChaosNemesisViewsConvergeAfterHeal) {
  for (std::uint64_t seed : {7u, 31u}) {
    store::ClusterConfig config = test::DefaultTestConfig();
    config.seed = seed;
    config.rpc_timeout = Millis(50);
    config.lock_lease_ttl = Millis(100);
    config.view_scrub_interval = Millis(250);
    config.anti_entropy_interval = Millis(300);
    test::TestCluster t(config);
    for (int k = 0; k < 12; ++k) {
      t.cluster.BootstrapLoadRow(
          "ticket", "t" + std::to_string(k),
          {{"assigned_to", "a" + std::to_string(k % 3)},
           {"status", std::string("open")}},
          100 + k);
    }

    sim::Nemesis nemesis(
        &t.cluster.simulation(), &t.cluster.network(),
        [&t](sim::EndpointId s) { t.cluster.CrashServer(s); },
        [&t](sim::EndpointId s) { t.cluster.RestartServer(s); });
    sim::NemesisOptions options;
    options.horizon = Seconds(3);
    options.num_servers = t.cluster.num_servers();
    options.crashes = 3;
    options.min_downtime = Millis(150);
    options.max_downtime = Millis(600);
    options.partitions = 2;
    options.drop_surges = 1;
    options.latency_spikes = 1;
    const sim::FaultSchedule schedule =
        sim::GenerateRandomSchedule(Rng(seed * 31), options);
    ASSERT_FALSE(schedule.empty());
    nemesis.Schedule(schedule);
    nemesis.HealAllAt(options.horizon);

    // Closed-loop workload: 3 clients on distinct coordinators, each with a
    // request deadline so a crashed coordinator doesn't wedge its loop.
    Rng rng(seed * 77);
    std::vector<std::unique_ptr<store::Client>> clients;
    std::function<void(int)> issue = [&](int c) {
      const Key key = "t" + std::to_string(rng.UniformInt(0, 11));
      auto next = [&issue, c](bool) { issue(c); };
      if (rng.Chance(0.5)) {
        clients[c]->Put(
            "ticket", key,
            {{"assigned_to", "a" + std::to_string(rng.UniformInt(0, 5))}},
            {.quorum = 1},
            [next](store::WriteResult w) { next(w.ok()); });
      } else if (rng.Chance(0.5)) {
        clients[c]->Put("ticket", key,
                        {{"status", rng.Chance(0.5) ? "open" : "closed"}},
                        {.quorum = 1},
                        [next](store::WriteResult w) { next(w.ok()); });
      } else {
        clients[c]->Query(
            store::QuerySpec::View("assigned_to_view", "a" + std::to_string(rng.UniformInt(0, 5))),
            {.columns = {"status"}},
            [next](store::ReadResult r) { next(r.ok()); });
      }
    };
    for (int c = 0; c < 3; ++c) {
      clients.push_back(t.cluster.NewClient(c));
      clients.back()->set_request_timeout(Millis(120));
      issue(c);
    }

    t.cluster.RunFor(options.horizon + Millis(500));
    EXPECT_EQ(nemesis.events_fired(), schedule.size()) << "seed " << seed;
    const store::Metrics& m = t.cluster.metrics();
    EXPECT_GT(m.server_crashes, 0u) << "seed " << seed;
    EXPECT_EQ(m.server_crashes, m.server_restarts) << "seed " << seed;

    // Drain: stop issuing by swapping the loop out, then quiesce and give
    // the scrub + anti-entropy their convergence window.
    issue = [](int) {};
    t.views->Quiesce();
    t.cluster.RunFor(Seconds(2));

    // Every base-table replica converged (value level).
    for (int k = 0; k < 12; ++k) {
      const Key key = "t" + std::to_string(k);
      const auto replicas = t.cluster.server(0).ReplicasOf("ticket", key);
      std::optional<storage::Row> first;
      for (ServerId r : replicas) {
        auto row = t.cluster.server(r).EngineFor("ticket").GetRow(key);
        ASSERT_TRUE(row.has_value())
            << "seed " << seed << ": replica " << r << " lost " << key;
        if (!first.has_value()) {
          first = row;
          continue;
        }
        EXPECT_EQ(first->GetValue("assigned_to"), row->GetValue("assigned_to"))
            << "seed " << seed << " " << key << " replica " << r;
        EXPECT_EQ(first->GetValue("status"), row->GetValue("status"))
            << "seed " << seed << " " << key << " replica " << r;
      }
    }

    auto expected =
        view::ComputeExpectedView(t.cluster, test::TicketView(t.cluster));
    auto exposed =
        view::ReadConvergedView(t.cluster, test::TicketView(t.cluster));
    ASSERT_EQ(expected.size(), exposed.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].view_key, exposed[i].view_key) << "seed " << seed;
      EXPECT_EQ(expected[i].base_key, exposed[i].base_key) << "seed " << seed;
      EXPECT_EQ(expected[i].cells.GetValue("status"),
                exposed[i].cells.GetValue("status"))
          << "seed " << seed << " " << expected[i].base_key;
    }
  }
}

// --------------------------------------------------------------------------
// Repair/GC convergence hazards.
// --------------------------------------------------------------------------

store::Schema PlainSchema() {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "t"}).ok());
  return schema;
}

// The anti-entropy digest used to XOR per-bucket entry hashes. XOR makes the
// bucket digest a GF(2)-linear map of the entry set: any linearly dependent
// set of 64-bit entry hashes (guaranteed to exist once a bucket holds more
// than 64 rows, and constructible with far fewer) cancels to zero, so a
// replica holding exactly that row set is indistinguishable from one holding
// NONE of the rows — the bucket never syncs and the replicas diverge forever.
// This test constructs such a cancelling set by Gaussian elimination over
// GF(2) and asserts the salted sum-with-count digest now tells them apart and
// the rows actually converge.
TEST(AntiEntropyRegressionTest, XorCancellingRowSetIsCaughtByCountedDigest) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.replication_factor = 2;
  config.anti_entropy_interval = 0;  // manual rounds only
  const int kBuckets = config.anti_entropy_buckets;
  test::TestCluster t(config, PlainSchema());

  // Candidate keys that share one replica pair AND one digest bucket; 65+
  // 64-bit hashes in one bucket guarantee a linearly dependent subset.
  std::map<std::pair<std::pair<ServerId, ServerId>, std::size_t>,
           std::vector<Key>>
      groups;
  std::vector<Key> keys;
  ServerId holder = 0;
  ServerId peer = 0;
  std::size_t bucket = 0;
  for (int i = 0; i < 200000 && keys.empty(); ++i) {
    Key key = "x" + std::to_string(i);
    const auto replicas = t.cluster.server(0).ReplicasOf("t", key);
    const std::pair<ServerId, ServerId> pair{
        std::min(replicas[0], replicas[1]),
        std::max(replicas[0], replicas[1])};
    const std::size_t b = Hash64(key) % static_cast<std::uint64_t>(kBuckets);
    auto& group = groups[{pair, b}];
    group.push_back(key);
    if (group.size() >= 80) {
      keys = group;
      holder = pair.first;
      peer = pair.second;
      bucket = b;
    }
  }
  ASSERT_GE(keys.size(), 65u) << "not enough co-bucketed keys found";

  std::vector<storage::Row> rows;
  std::vector<std::uint64_t> hashes;
  for (const Key& key : keys) {
    storage::Row row;
    row.Apply("a", Cell::Live(key, 100));
    // The OLD formula's per-entry hash, recomputed here verbatim.
    hashes.push_back(HashCombine(Hash64(key), storage::RowDigest(row)));
    rows.push_back(std::move(row));
  }

  // Gaussian elimination over GF(2): find a non-empty subset whose entry
  // hashes XOR to zero, tracking subset membership alongside each reduced
  // vector.
  std::array<std::uint64_t, 64> basis_vec{};
  std::array<std::bitset<128>, 64> basis_mask{};
  std::bitset<128> subset;
  bool found = false;
  for (std::size_t i = 0; i < hashes.size() && !found; ++i) {
    std::uint64_t v = hashes[i];
    std::bitset<128> mask;
    mask.set(i);
    while (v != 0) {
      int bit = 63;
      while (((v >> bit) & 1u) == 0) --bit;
      if (basis_vec[static_cast<std::size_t>(bit)] == 0) {
        basis_vec[static_cast<std::size_t>(bit)] = v;
        basis_mask[static_cast<std::size_t>(bit)] = mask;
        break;
      }
      v ^= basis_vec[static_cast<std::size_t>(bit)];
      mask ^= basis_mask[static_cast<std::size_t>(bit)];
    }
    if (v == 0) {
      subset = mask;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "65+ vectors in a 64-dim space must be dependent";

  // Apply the cancelling set to ONE replica of the pair only.
  std::uint64_t xor_fold = 0;
  std::size_t subset_size = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!subset[i]) continue;
    xor_fold ^= hashes[i];
    ++subset_size;
    t.cluster.server(holder).LocalApply("t", keys[i], rows[i]);
  }
  ASSERT_GT(subset_size, 0u);
  // The hazard, demonstrated: under the old XOR fold both replicas computed
  // digest 0 for this bucket — rows on one side, nothing on the other.
  ASSERT_EQ(xor_fold, 0u);

  const auto mine = t.cluster.server(holder).ComputeSyncDigests(
      "t", peer, kBuckets);
  const auto theirs = t.cluster.server(peer).ComputeSyncDigests(
      "t", holder, kBuckets);
  EXPECT_NE(mine[bucket], theirs[bucket])
      << "counted digest must distinguish " << subset_size
      << " rows from an empty bucket";

  t.cluster.server(holder).RunAntiEntropyRound();
  t.cluster.RunFor(Millis(500));
  EXPECT_GT(t.cluster.metrics().anti_entropy_buckets_synced, 0u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!subset[i]) continue;
    auto cell = t.cluster.server(peer).EngineFor("t").GetCell(keys[i], "a");
    ASSERT_TRUE(cell.has_value()) << keys[i] << " never reached the peer";
    EXPECT_EQ(cell->value, keys[i]);
  }
}

// Tombstone-resurrection guard: a tombstone whose delete is still owed to a
// partitioned replica (a stored hint) must survive GC even past grace.
// Without the purge floor, the coordinator compacts the tombstone away while
// the lagging replica still holds the live cell; if the coordinator then
// crashes (hints are volatile), nothing carries the delete any more and
// anti-entropy resurrects the row cluster-wide.
TEST(TombstoneGcTest, PendingHintDefersPurgeAndDeleteSurvivesCrash) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.replication_factor = 2;
  config.rpc_timeout = Millis(50);
  config.hint_replay_interval = Seconds(5);  // hints recorded, no tick fires
  config.anti_entropy_interval = 0;          // manual rounds only
  config.engine.tombstone_gc_grace = Millis(20);
  test::TestCluster t(config, PlainSchema());

  const Key key = "gc-key";
  const auto replicas = t.cluster.server(0).ReplicasOf("t", key);
  const ServerId coord = replicas[0];
  const ServerId lagging = replicas[1];

  auto client = t.cluster.NewClient(coord);
  ASSERT_TRUE(
      client->PutSync("t", key, {{"a", std::string("v")}}, {.quorum = 2})
          .ok());
  t.cluster.RunFor(Millis(50));

  // Partition the second replica, then delete at write quorum 1: the
  // coordinator applies the tombstone and stores a hint for the replica
  // still holding the live cell.
  t.cluster.network().SetEndpointDown(lagging, true);
  ASSERT_TRUE(
      client->PutSync("t", key, {{"a", std::nullopt}}, {.quorum = 1}).ok());
  t.cluster.RunFor(Millis(100));  // past the rpc timeout: hint stored
  ASSERT_EQ(t.cluster.server(coord).pending_hints(lagging), 1u);

  // Age the tombstone past grace, then compact: the pending hint's
  // timestamp floors the purge.
  t.cluster.RunFor(Millis(100));
  t.cluster.server(coord).RunCompactionRound();
  t.cluster.RunFor(Millis(50));
  EXPECT_GT(t.cluster.metrics().compactions_run, 0u);
  EXPECT_EQ(t.cluster.metrics().tombstones_purged, 0u);
  EXPECT_GT(t.cluster.metrics().tombstone_purge_deferred, 0u)
      << "purge must be deferred while the delete is owed to a replica";
  auto cell = t.cluster.server(coord).EngineFor("t").GetCell(key, "a");
  ASSERT_TRUE(cell.has_value()) << "tombstone purged with its hint pending";
  EXPECT_TRUE(cell->tombstone);

  // Worst case: the coordinator crashes and its volatile hints die with it.
  // The delete now survives ONLY as the durable tombstone the floor refused
  // to purge.
  t.cluster.CrashServer(coord);
  t.cluster.RunFor(Millis(50));
  t.cluster.RestartServer(coord);
  t.cluster.RunFor(Millis(50));
  EXPECT_EQ(t.cluster.server(coord).pending_hints(lagging), 0u);

  t.cluster.network().SetEndpointDown(lagging, false);
  t.cluster.server(coord).RunAntiEntropyRound();
  t.cluster.RunFor(Millis(500));

  for (ServerId replica : replicas) {
    auto c = t.cluster.server(replica).EngineFor("t").GetCell(key, "a");
    ASSERT_TRUE(c.has_value()) << "replica " << replica;
    EXPECT_TRUE(c->tombstone)
        << "replica " << replica << " resurrected the deleted row";
  }
}

}  // namespace
}  // namespace mvstore

// Composite view-row key encoding: injectivity, ordering, prefix-scan
// safety, and the deleted-row sentinel keys.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "store/codec.h"

namespace mvstore::store {
namespace {

TEST(CodecTest, RoundTripSimple) {
  Key composed = ComposeViewRowKey("rliu", "ticket-1");
  auto split = SplitViewRowKey(composed);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, "rliu");
  EXPECT_EQ(split->second, "ticket-1");
}

TEST(CodecTest, RoundTripWithSeparatorAndEscapeBytes) {
  const std::string nasty1 = std::string("a\x01b\x02c");
  const std::string nasty2 = std::string("\x02\x02\x01");
  Key composed = ComposeViewRowKey(nasty1, nasty2);
  auto split = SplitViewRowKey(composed);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, nasty1);
  EXPECT_EQ(split->second, nasty2);
}

TEST(CodecTest, EmptyComponents) {
  Key composed = ComposeViewRowKey("", "");
  auto split = SplitViewRowKey(composed);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, "");
  EXPECT_EQ(split->second, "");
}

TEST(CodecTest, PartitionPrefixMatchesExactlyItsViewKey) {
  // "a" must not be a prefix-match for view key "ab" rows.
  Key prefix_a = ViewPartitionPrefix("a");
  Key row_ab = ComposeViewRowKey("ab", "k");
  Key row_a = ComposeViewRowKey("a", "k");
  EXPECT_EQ(row_a.compare(0, prefix_a.size(), prefix_a), 0);
  EXPECT_NE(row_ab.compare(0, prefix_a.size(), prefix_a), 0);
}

TEST(CodecTest, PartitionPrefixOfComposedKey) {
  Key composed = ComposeViewRowKey("user\x01x", "base");
  EXPECT_EQ(PartitionPrefixOf(composed), ViewPartitionPrefix("user\x01x"));
}

TEST(CodecTest, SameViewKeyGroupsContiguously) {
  // All rows of one view key sort between the prefix and any other view key.
  std::vector<Key> keys = {
      ComposeViewRowKey("bob", "2"),  ComposeViewRowKey("alice", "9"),
      ComposeViewRowKey("bob", "1"),  ComposeViewRowKey("alice", "1"),
      ComposeViewRowKey("carol", "5"),
  };
  std::sort(keys.begin(), keys.end());
  // alice rows first, then bob rows, then carol.
  EXPECT_EQ(SplitViewRowKey(keys[0])->first, "alice");
  EXPECT_EQ(SplitViewRowKey(keys[1])->first, "alice");
  EXPECT_EQ(SplitViewRowKey(keys[2])->first, "bob");
  EXPECT_EQ(SplitViewRowKey(keys[3])->first, "bob");
  EXPECT_EQ(SplitViewRowKey(keys[4])->first, "carol");
}

TEST(CodecTest, InjectivityRandomized) {
  // Distinct (view key, base key) pairs never collide after encoding.
  Rng rng(99);
  std::set<Key> seen_composed;
  std::set<std::pair<Key, Key>> seen_pairs;
  auto random_component = [&rng]() {
    std::string s;
    const int len = static_cast<int>(rng.UniformInt(0, 6));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.UniformInt(0, 4)));  // nasty bytes
    }
    return s;
  };
  for (int i = 0; i < 5000; ++i) {
    Key vk = random_component();
    Key bk = random_component();
    const bool fresh_pair = seen_pairs.insert({vk, bk}).second;
    const bool fresh_key = seen_composed.insert(ComposeViewRowKey(vk, bk)).second;
    EXPECT_EQ(fresh_pair, fresh_key) << "collision or instability";
  }
}

TEST(CodecTest, MalformedKeysRejected) {
  EXPECT_FALSE(SplitViewRowKey("no-separator-here").has_value());
  // Dangling escape byte.
  EXPECT_FALSE(
      SplitViewRowKey(std::string("ab\x02") + kComponentSeparator + "c")
          .has_value());
  // Unknown escape code.
  EXPECT_FALSE(
      SplitViewRowKey(std::string("a\x02x") + kComponentSeparator + "c")
          .has_value());
}

TEST(CodecTest, UnescapeRejectsRawSeparator) {
  EXPECT_FALSE(UnescapeComponent(std::string(1, kComponentSeparator))
                   .has_value());
}

TEST(CodecTest, SplitViewsReturnEscapedSlicesZeroCopy) {
  const std::string vk = std::string("v\x01");
  const std::string bk = std::string("b\x02");
  Key composed = ComposeViewRowKey(vk, bk);
  std::string_view escaped_view;
  std::string_view escaped_base;
  ASSERT_TRUE(SplitViewRowKeyViews(composed, &escaped_view, &escaped_base));
  // The slices point into the composed key itself...
  EXPECT_EQ(escaped_view.data(), composed.data());
  EXPECT_EQ(escaped_base.data() + escaped_base.size(),
            composed.data() + composed.size());
  // ...and unescape back to the originals.
  EXPECT_EQ(UnescapeComponent(escaped_view), vk);
  EXPECT_EQ(UnescapeComponent(escaped_base), bk);
  EXPECT_FALSE(SplitViewRowKeyViews("no-separator", &escaped_view,
                                    &escaped_base));
}

TEST(CodecTest, ComposeToReusesScratchBuffer) {
  std::string scratch;
  ComposeViewRowKeyTo("alice", "1", scratch);
  EXPECT_EQ(scratch, ComposeViewRowKey("alice", "1"));
  scratch.clear();
  const char* data_before = scratch.data();
  ComposeViewRowKeyTo("bob", "2", scratch);
  EXPECT_EQ(scratch, ComposeViewRowKey("bob", "2"));
  // Same capacity, no reallocation for a smaller second key.
  EXPECT_EQ(scratch.data(), data_before);
}

TEST(CodecTest, InternedRoundTripEveryEscapeEdgeCase) {
  // Every escape-relevant shape travels encode -> intern -> view -> decode
  // and comes back byte-identical.
  const std::string sep(1, kComponentSeparator);
  const std::string esc(1, kEscape);
  const std::vector<std::string> components = {
      "",                       // empty
      "plain",                  // nothing to escape
      sep,                      // separator alone
      esc,                      // escape alone
      sep + sep + sep,          // runs of separators
      esc + esc,                // runs of escapes
      esc + sep,                // escape then separator
      sep + esc,                // separator then escape
      "a" + sep + "b" + esc,    // mixed with plain bytes
      esc + "s",                // bytes that LOOK like an escape sequence
      esc + "e",
      std::string(1, kSentinelPrefix),  // sentinel byte is not special here
      std::string("\x00\x01\x02\x03", 4),
  };
  KeyInterner interner;
  std::string scratch;
  for (const std::string& vk : components) {
    for (const std::string& bk : components) {
      KeyRef ref = InternViewRowKey(interner, vk, bk, scratch);
      ASSERT_TRUE(ref.valid());
      auto split = SplitViewRowKey(interner.View(ref));
      ASSERT_TRUE(split.has_value()) << "vk/bk shape broke the split";
      EXPECT_EQ(split->first, vk);
      EXPECT_EQ(split->second, bk);
      // The interned bytes equal the plain composed key, and the partition
      // slice of the interned bytes routes like the uninterned one.
      EXPECT_EQ(interner.View(ref), ComposeViewRowKey(vk, bk));
      EXPECT_EQ(PartitionPrefixViewOf(interner.View(ref)),
                ViewPartitionPrefix(vk));
    }
  }
}

TEST(CodecTest, InternedRefIdentityMatchesPairIdentityFuzz) {
  // Ref equality must coincide exactly with (view key, base key) equality —
  // the property that lets consumers dedupe on the 4-byte handle.
  Rng rng(321);
  KeyInterner interner;
  std::string scratch;
  std::map<std::pair<Key, Key>, KeyRef> model;
  auto random_component = [&rng]() {
    std::string s;
    const int len = static_cast<int>(rng.UniformInt(0, 5));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.UniformInt(0, 4)));  // nasty bytes
    }
    return s;
  };
  for (int i = 0; i < 8000; ++i) {
    Key vk = random_component();
    Key bk = random_component();
    KeyRef ref = InternViewRowKey(interner, vk, bk, scratch);
    auto [it, fresh] = model.emplace(std::make_pair(vk, bk), ref);
    if (!fresh) EXPECT_EQ(ref, it->second);
    auto split = SplitViewRowKey(interner.View(ref));
    ASSERT_TRUE(split.has_value());
    EXPECT_EQ(split->first, vk);
    EXPECT_EQ(split->second, bk);
  }
  EXPECT_EQ(interner.size(), model.size());
}

// ---------------------------------------------------------------------------
// Sub-shard headers (ISSUE 9).
// ---------------------------------------------------------------------------

TEST(CodecShardTest, ShardCountOneIsByteIdenticalToClassicLayout) {
  // The regression the whole PR hangs on: shard_count == 1 must not move a
  // single byte, so pre-sharding clusters keep their data layout.
  const std::pair<Key, Key> cases[] = {
      {"rliu", "ticket-1"},
      {"", ""},
      {std::string("a\x01b\x02"), std::string("\x02\x01")},
  };
  for (const auto& [vk, bk] : cases) {
    EXPECT_EQ(ShardedViewRowKey(vk, bk, 0, 1), ComposeViewRowKey(vk, bk));
    std::string appended;
    ShardedViewRowKeyTo(vk, bk, 0, 1, appended);
    EXPECT_EQ(appended, ComposeViewRowKey(vk, bk));
    EXPECT_EQ(ShardedViewPartitionPrefix(vk, 0, 1), ViewPartitionPrefix(vk));
  }
  Key classic = ComposeViewRowKey("v", "b");
  auto split = SplitShardedViewRowKey(classic, 1);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, "v");
  EXPECT_EQ(split->second, "b");
  EXPECT_EQ(ShardOfComposedKey(classic, 1).value_or(-1), 0);
}

TEST(CodecShardTest, ShardedRoundTrip) {
  Rng rng(20130913);
  auto random_component = [&rng]() {
    std::string s;
    const int len = static_cast<int>(rng.UniformInt(0, 6));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.UniformInt(0, 5)));  // nasty bytes
    }
    return s;
  };
  for (int shard_count : {2, 8, kMaxViewShards}) {
    for (int i = 0; i < 500; ++i) {
      const Key vk = random_component();
      const Key bk = random_component();
      const int shard = ShardOfBaseKey(bk, shard_count);
      ASSERT_GE(shard, 0);
      ASSERT_LT(shard, shard_count);
      const Key composed = ShardedViewRowKey(vk, bk, shard, shard_count);
      auto split = SplitShardedViewRowKey(composed, shard_count);
      ASSERT_TRUE(split.has_value());
      EXPECT_EQ(split->first, vk);
      EXPECT_EQ(split->second, bk);
      EXPECT_EQ(ShardOfComposedKey(composed, shard_count).value_or(-1), shard);
    }
  }
}

TEST(CodecShardTest, ShardRoutingIsDeterministic) {
  EXPECT_EQ(ShardOfBaseKey("ticket-42", 8), ShardOfBaseKey("ticket-42", 8));
  EXPECT_EQ(ShardOfBaseKey("anything", 1), 0);
  EXPECT_EQ(ShardOfBaseKey("anything", 0), 0);
}

TEST(CodecShardTest, ShardHeaderExtendsThePartitionPrefix) {
  // Placement for free: the shard header precedes the first separator, so
  // PartitionPrefixOf — which the ring, anti-entropy, and membership
  // streaming all key on — automatically distinguishes sub-shards.
  const int shard_count = 8;
  const Key bk = "ticket-7";
  const int shard = ShardOfBaseKey(bk, shard_count);
  const Key composed = ShardedViewRowKey("rliu", bk, shard, shard_count);
  EXPECT_EQ(PartitionPrefixOf(composed),
            ShardedViewPartitionPrefix("rliu", shard, shard_count));
  // Distinct sub-shards of one view key are distinct ring partitions.
  EXPECT_NE(ShardedViewPartitionPrefix("rliu", 0, shard_count),
            ShardedViewPartitionPrefix("rliu", 1, shard_count));
}

TEST(CodecShardTest, RowsOfOneShardGroupUnderItsPrefix) {
  const int shard_count = 4;
  for (int shard = 0; shard < shard_count; ++shard) {
    const Key prefix = ShardedViewPartitionPrefix("hot", shard, shard_count);
    const Key row = ShardedViewRowKey("hot", "b" + std::to_string(shard),
                                      shard, shard_count);
    EXPECT_EQ(row.compare(0, prefix.size(), prefix), 0);
    // And not under any other shard's prefix.
    const Key other =
        ShardedViewPartitionPrefix("hot", (shard + 1) % shard_count,
                                   shard_count);
    EXPECT_NE(row.compare(0, other.size(), other), 0);
  }
}

TEST(CodecShardTest, MalformedShardHeadersRejected) {
  const int shard_count = 8;
  // A classic (headerless) key is not a valid sharded key.
  const Key classic = ComposeViewRowKey("v", "b");
  EXPECT_FALSE(SplitShardedViewRowKey(classic, shard_count).has_value());
  EXPECT_FALSE(ShardOfComposedKey(classic, shard_count).has_value());
  // A shard byte outside [0, shard_count) is rejected.
  Key bad = ShardedViewRowKey("v", "b", 7, shard_count);
  bad[1] = static_cast<char>(kShardByteBase + shard_count);
  EXPECT_FALSE(SplitShardedViewRowKey(bad, shard_count).has_value());
  EXPECT_FALSE(ShardOfComposedKey(bad, shard_count).has_value());
  // Truncated: header with nothing behind it.
  const Key truncated(1, kShardHeaderPrefix);
  EXPECT_FALSE(SplitShardedViewRowKey(truncated, shard_count).has_value());
}

TEST(CodecShardTest, SentinelFamiliesStayInTheirBaseKeyShard) {
  // The anchor row of base key B lives under the sentinel view key but is
  // sharded by B — the whole family (live row, stale chain, anchor) must
  // land in ONE sub-shard so chain walks never cross partitions.
  const int shard_count = 8;
  const Key bk = "ticket-3";
  const int shard = ShardOfBaseKey(bk, shard_count);
  const Key anchor =
      ShardedViewRowKey(DeletedSentinelViewKey(bk), bk, shard, shard_count);
  EXPECT_EQ(ShardOfComposedKey(anchor, shard_count).value_or(-1), shard);
}

TEST(CodecTest, SentinelViewKeys) {
  Key sentinel = DeletedSentinelViewKey("base-7");
  EXPECT_TRUE(IsSentinelViewKey(sentinel));
  EXPECT_FALSE(IsSentinelViewKey("base-7"));
  EXPECT_FALSE(IsSentinelViewKey(""));
  EXPECT_NE(DeletedSentinelViewKey("a"), DeletedSentinelViewKey("b"));

  // Sentinel rows round-trip through the codec like any other view key.
  Key composed = ComposeViewRowKey(sentinel, "base-7");
  auto split = SplitViewRowKey(composed);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, sentinel);
  EXPECT_TRUE(IsSentinelViewKey(split->first));
}

}  // namespace
}  // namespace mvstore::store

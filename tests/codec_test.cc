// Composite view-row key encoding: injectivity, ordering, prefix-scan
// safety, and the deleted-row sentinel keys.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "store/codec.h"

namespace mvstore::store {
namespace {

TEST(CodecTest, RoundTripSimple) {
  Key composed = ComposeViewRowKey("rliu", "ticket-1");
  auto split = SplitViewRowKey(composed);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, "rliu");
  EXPECT_EQ(split->second, "ticket-1");
}

TEST(CodecTest, RoundTripWithSeparatorAndEscapeBytes) {
  const std::string nasty1 = std::string("a\x01b\x02c");
  const std::string nasty2 = std::string("\x02\x02\x01");
  Key composed = ComposeViewRowKey(nasty1, nasty2);
  auto split = SplitViewRowKey(composed);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, nasty1);
  EXPECT_EQ(split->second, nasty2);
}

TEST(CodecTest, EmptyComponents) {
  Key composed = ComposeViewRowKey("", "");
  auto split = SplitViewRowKey(composed);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, "");
  EXPECT_EQ(split->second, "");
}

TEST(CodecTest, PartitionPrefixMatchesExactlyItsViewKey) {
  // "a" must not be a prefix-match for view key "ab" rows.
  Key prefix_a = ViewPartitionPrefix("a");
  Key row_ab = ComposeViewRowKey("ab", "k");
  Key row_a = ComposeViewRowKey("a", "k");
  EXPECT_EQ(row_a.compare(0, prefix_a.size(), prefix_a), 0);
  EXPECT_NE(row_ab.compare(0, prefix_a.size(), prefix_a), 0);
}

TEST(CodecTest, PartitionPrefixOfComposedKey) {
  Key composed = ComposeViewRowKey("user\x01x", "base");
  EXPECT_EQ(PartitionPrefixOf(composed), ViewPartitionPrefix("user\x01x"));
}

TEST(CodecTest, SameViewKeyGroupsContiguously) {
  // All rows of one view key sort between the prefix and any other view key.
  std::vector<Key> keys = {
      ComposeViewRowKey("bob", "2"),  ComposeViewRowKey("alice", "9"),
      ComposeViewRowKey("bob", "1"),  ComposeViewRowKey("alice", "1"),
      ComposeViewRowKey("carol", "5"),
  };
  std::sort(keys.begin(), keys.end());
  // alice rows first, then bob rows, then carol.
  EXPECT_EQ(SplitViewRowKey(keys[0])->first, "alice");
  EXPECT_EQ(SplitViewRowKey(keys[1])->first, "alice");
  EXPECT_EQ(SplitViewRowKey(keys[2])->first, "bob");
  EXPECT_EQ(SplitViewRowKey(keys[3])->first, "bob");
  EXPECT_EQ(SplitViewRowKey(keys[4])->first, "carol");
}

TEST(CodecTest, InjectivityRandomized) {
  // Distinct (view key, base key) pairs never collide after encoding.
  Rng rng(99);
  std::set<Key> seen_composed;
  std::set<std::pair<Key, Key>> seen_pairs;
  auto random_component = [&rng]() {
    std::string s;
    const int len = static_cast<int>(rng.UniformInt(0, 6));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.UniformInt(0, 4)));  // nasty bytes
    }
    return s;
  };
  for (int i = 0; i < 5000; ++i) {
    Key vk = random_component();
    Key bk = random_component();
    const bool fresh_pair = seen_pairs.insert({vk, bk}).second;
    const bool fresh_key = seen_composed.insert(ComposeViewRowKey(vk, bk)).second;
    EXPECT_EQ(fresh_pair, fresh_key) << "collision or instability";
  }
}

TEST(CodecTest, MalformedKeysRejected) {
  EXPECT_FALSE(SplitViewRowKey("no-separator-here").has_value());
  // Dangling escape byte.
  EXPECT_FALSE(
      SplitViewRowKey(std::string("ab\x02") + kComponentSeparator + "c")
          .has_value());
  // Unknown escape code.
  EXPECT_FALSE(
      SplitViewRowKey(std::string("a\x02x") + kComponentSeparator + "c")
          .has_value());
}

TEST(CodecTest, UnescapeRejectsRawSeparator) {
  EXPECT_FALSE(UnescapeComponent(std::string(1, kComponentSeparator))
                   .has_value());
}

TEST(CodecTest, SentinelViewKeys) {
  Key sentinel = DeletedSentinelViewKey("base-7");
  EXPECT_TRUE(IsSentinelViewKey(sentinel));
  EXPECT_FALSE(IsSentinelViewKey("base-7"));
  EXPECT_FALSE(IsSentinelViewKey(""));
  EXPECT_NE(DeletedSentinelViewKey("a"), DeletedSentinelViewKey("b"));

  // Sentinel rows round-trip through the codec like any other view key.
  Key composed = ComposeViewRowKey(sentinel, "base-7");
  auto split = SplitViewRowKey(composed);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, sentinel);
  EXPECT_TRUE(IsSentinelViewKey(split->first));
}

}  // namespace
}  // namespace mvstore::store

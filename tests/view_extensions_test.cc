// Extensions beyond the paper's core: equi-join views (PNUTS-style),
// stale-row trimming, multiple views per base table, and client request
// deadlines.

#include <gtest/gtest.h>

#include <string>

#include "store/client.h"
#include "tests/test_util.h"
#include "view/join_view.h"
#include "view/scrub.h"

namespace mvstore {
namespace {

using store::ReadOptions;
using store::WriteOptions;
using test::TestCluster;

// ---------------------------------------------------------------------------
// Equi-join views.
// ---------------------------------------------------------------------------

view::JoinViewDef OrdersJoin() {
  view::JoinViewDef def;
  def.name = "orders_with_customers";
  def.left_table = "customer";
  def.left_join_column = "region";
  def.left_columns = {"name"};
  def.right_table = "orders";
  def.right_join_column = "region";
  def.right_columns = {"item"};
  return def;
}

store::Schema JoinSchema() {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "customer"}).ok());
  MVSTORE_CHECK(schema.CreateTable({.name = "orders"}).ok());
  MVSTORE_CHECK(view::DeclareJoinView(schema, OrdersJoin()).ok());
  return schema;
}

TEST(JoinViewTest, DeclareCreatesBothPhysicalViews) {
  store::Schema schema = JoinSchema();
  EXPECT_NE(schema.GetView("orders_with_customers_left"), nullptr);
  EXPECT_NE(schema.GetView("orders_with_customers_right"), nullptr);
}

TEST(JoinViewTest, DeclareRequiresBothTables) {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "customer"}).ok());
  EXPECT_FALSE(view::DeclareJoinView(schema, OrdersJoin()).ok());
}

TEST(JoinViewTest, InnerJoinByJoinKey) {
  TestCluster t(test::DefaultTestConfig(), JoinSchema());
  t.cluster.BootstrapLoadRow(
      "customer", "c1",
      {{"region", std::string("emea")}, {"name", std::string("acme")}}, 100);
  t.cluster.BootstrapLoadRow(
      "customer", "c2",
      {{"region", std::string("apac")}, {"name", std::string("initech")}},
      101);
  t.cluster.BootstrapLoadRow(
      "orders", "o1",
      {{"region", std::string("emea")}, {"item", std::string("widget")}}, 102);
  t.cluster.BootstrapLoadRow(
      "orders", "o2",
      {{"region", std::string("emea")}, {"item", std::string("gadget")}}, 103);

  auto client = t.cluster.NewClient();
  auto emea = client->QuerySync(view::JoinQuerySpec(OrdersJoin(), "emea"),
                                {.quorum = 3});
  ASSERT_TRUE(emea.ok());
  ASSERT_EQ(emea.joined.size(), 2u);  // 1 customer x 2 orders
  for (const store::JoinedPair& r : emea.joined) {
    EXPECT_EQ(r.left.base_key, "c1");
    EXPECT_EQ(r.left.cells.GetValue("name").value_or(""), "acme");
  }

  // apac has a customer but no orders: inner join is empty.
  auto apac = client->QuerySync(view::JoinQuerySpec(OrdersJoin(), "apac"),
                                {.quorum = 3});
  ASSERT_TRUE(apac.ok());
  EXPECT_TRUE(apac.joined.empty());
}

TEST(JoinViewTest, MaintainedIncrementallyOnBothSides) {
  TestCluster t(test::DefaultTestConfig(), JoinSchema());
  auto client = t.cluster.NewClient();

  ASSERT_TRUE(client
                  ->PutSync("customer", "c1",
                            {{"region", std::string("emea")},
                             {"name", std::string("acme")}},
                            WriteOptions{})
                  .ok());
  ASSERT_TRUE(client
                  ->PutSync("orders", "o1",
                            {{"region", std::string("emea")},
                             {"item", std::string("widget")}},
                            WriteOptions{})
                  .ok());
  t.Quiesce();
  auto joined = client->QuerySync(view::JoinQuerySpec(OrdersJoin(), "emea"),
                                  {.quorum = 3});
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined.joined.size(), 1u);
  EXPECT_EQ(joined.joined[0].right.cells.GetValue("item").value_or(""),
            "widget");

  // Moving the order to another region drops it from the emea join.
  ASSERT_TRUE(
      client->PutSync("orders", "o1", {{"region", std::string("apac")}},
                            WriteOptions{})
          .ok());
  t.Quiesce();
  joined = client->QuerySync(view::JoinQuerySpec(OrdersJoin(), "emea"),
                             {.quorum = 3});
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined.joined.empty());
}

// ---------------------------------------------------------------------------
// Stale-row trimming.
// ---------------------------------------------------------------------------

TEST(TrimTest, RetiresOldStaleRowsOnly) {
  TestCluster t;
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("a0")},
                              {"status", std::string("open")}},
                             100);
  auto client = t.cluster.NewClient();
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "1",
                              {{"assigned_to", "a" + std::to_string(i)}},
                            WriteOptions{})
                    .ok());
    t.Quiesce();
  }
  const store::ViewDef& view = test::TicketView(t.cluster);
  view::ScrubReport before = view::CheckView(t.cluster, view);
  ASSERT_TRUE(before.clean()) << before.Summary();
  ASSERT_EQ(before.stale_rows, 6u);  // 5 superseded keys + the anchor

  // Trim everything older than "now" (the cutoff must stay below any
  // future client timestamp): all five stale rows are older; the live row
  // stays.
  const Timestamp cutoff = store::kClientTimestampEpoch + t.cluster.Now();
  EXPECT_EQ(view::TrimStaleViewRows(t.cluster, view, cutoff), 5u);

  view::ScrubReport after = view::CheckView(t.cluster, view);
  EXPECT_TRUE(after.clean()) << after.Summary();
  EXPECT_EQ(after.stale_rows, 1u);  // only the (re-pointed) anchor remains
  EXPECT_EQ(after.live_rows, 1u);

  // Reads still serve the live row.
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "a5"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records.records.size(), 1u);
}

TEST(TrimTest, FreshStaleRowsSurvive) {
  TestCluster t;
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("a0")}}, 100);
  auto client = t.cluster.NewClient();
  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"assigned_to", std::string("a1")}},
                            WriteOptions{})
          .ok());
  t.Quiesce();
  const store::ViewDef& view = test::TicketView(t.cluster);
  // Cutoff below the stale row's timestamps: nothing to trim.
  EXPECT_EQ(view::TrimStaleViewRows(t.cluster, view, 50), 0u);
  EXPECT_EQ(view::CheckView(t.cluster, view).stale_rows, 2u);  // a0 + anchor
}

TEST(TrimTest, TrimmedKeyCanBeReassignedBack) {
  TestCluster t;
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("alice")},
                              {"status", std::string("open")}},
                             100);
  auto client = t.cluster.NewClient();
  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"assigned_to", std::string("bob")}},
                            WriteOptions{})
          .ok());
  t.Quiesce();
  const store::ViewDef& view = test::TicketView(t.cluster);
  ASSERT_EQ(view::TrimStaleViewRows(
                t.cluster, view,
                store::kClientTimestampEpoch + t.cluster.Now()),
            1u);  // alice's stale row retired
  // Writes at the exact cutoff instant would TIE with the trim tombstones
  // (and deletions win ties); step past it, as any real deployment's
  // grace-period cutoff trivially is.
  t.cluster.RunFor(Millis(1));

  // Theorem 1 case 2b territory: assign back to the trimmed key.
  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"assigned_to", std::string("alice")}},
                            WriteOptions{})
          .ok());
  t.Quiesce();
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "alice"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.records.size(), 1u);
  EXPECT_TRUE(view::CheckView(t.cluster, view).clean());
}

// ---------------------------------------------------------------------------
// Multiple views on one base table.
// ---------------------------------------------------------------------------

store::Schema TwoViewSchema() {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "ticket"}).ok());
  store::ViewDef by_assignee;
  by_assignee.name = "by_assignee";
  by_assignee.base_table = "ticket";
  by_assignee.view_key_column = "assigned_to";
  by_assignee.materialized_columns = {"status"};
  MVSTORE_CHECK(schema.CreateView(by_assignee).ok());
  store::ViewDef by_status;
  by_status.name = "by_status";
  by_status.base_table = "ticket";
  by_status.view_key_column = "status";
  by_status.materialized_columns = {"assigned_to"};
  MVSTORE_CHECK(schema.CreateView(by_status).ok());
  return schema;
}

TEST(MultiViewTest, OnePutMaintainsBothViews) {
  TestCluster t(test::DefaultTestConfig(), TwoViewSchema());
  auto client = t.cluster.NewClient();
  // One Put touches BOTH view keys (assigned_to is by_assignee's key and
  // by_status materializes it; status symmetrically).
  ASSERT_TRUE(client
                  ->PutSync("ticket", "1",
                            {{"assigned_to", std::string("alice")},
                             {"status", std::string("open")}},
                            WriteOptions{})
                  .ok());
  t.Quiesce();

  auto by_assignee = client->QuerySync(
      store::QuerySpec::View("by_assignee", "alice"), {.quorum = 3});
  ASSERT_TRUE(by_assignee.ok());
  ASSERT_EQ(by_assignee.records.size(), 1u);
  EXPECT_EQ(by_assignee.records[0].cells.GetValue("status").value_or(""), "open");

  auto by_status = client->QuerySync(
      store::QuerySpec::View("by_status", "open"), {.quorum = 3});
  ASSERT_TRUE(by_status.ok());
  ASSERT_EQ(by_status.records.size(), 1u);
  EXPECT_EQ(by_status.records[0].cells.GetValue("assigned_to").value_or(""),
            "alice");

  for (const char* name : {"by_assignee", "by_status"}) {
    view::ScrubReport report =
        view::CheckView(t.cluster, *t.cluster.schema().GetView(name));
    EXPECT_TRUE(report.clean()) << name << ": " << report.Summary();
  }
}

TEST(MultiViewTest, ViewsEvolveIndependently) {
  TestCluster t(test::DefaultTestConfig(), TwoViewSchema());
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("alice")},
                              {"status", std::string("open")}},
                             100);
  auto client = t.cluster.NewClient();
  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"status", std::string("closed")}},
                            WriteOptions{})
          .ok());
  t.Quiesce();

  // by_status saw a view-KEY change; by_assignee a materialized change.
  auto open = client->QuerySync(
      store::QuerySpec::View("by_status", "open"), {.quorum = 3});
  ASSERT_TRUE(open.ok());
  EXPECT_TRUE(open.records.empty());
  auto closed = client->QuerySync(
      store::QuerySpec::View("by_status", "closed"), {.quorum = 3});
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed.records.size(), 1u);
  auto alice = client->QuerySync(
      store::QuerySpec::View("by_assignee", "alice"), {.quorum = 3});
  ASSERT_TRUE(alice.ok());
  ASSERT_EQ(alice.records.size(), 1u);
  EXPECT_EQ(alice.records[0].cells.GetValue("status").value_or(""), "closed");
}

// ---------------------------------------------------------------------------
// Client request deadlines.
// ---------------------------------------------------------------------------

TEST(ClientTimeoutTest, DeadCoordinatorTimesOut) {
  TestCluster t;
  t.cluster.network().SetEndpointDown(2, true);
  auto client = t.cluster.NewClient(2);
  client->set_request_timeout(Millis(100));
  const SimTime before = t.cluster.Now();
  auto row = client->GetSync("ticket", "k", ReadOptions{});
  EXPECT_TRUE(row.status.IsTimedOut()) << row.status;
  EXPECT_GE(t.cluster.Now() - before, Millis(100));
}

TEST(ClientTimeoutTest, HealthyRequestsUnaffected) {
  TestCluster t;
  t.cluster.BootstrapLoadRow("ticket", "k",
                             {{"status", std::string("open")}}, 100);
  auto client = t.cluster.NewClient();
  client->set_request_timeout(Millis(100));
  auto row = client->GetSync("ticket", "k", ReadOptions{});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.row.GetValue("status").value_or(""), "open");
  // The armed deadline must be inert after the reply.
  t.cluster.RunFor(Millis(200));
}

TEST(ClientTimeoutTest, AppliesToAllOperationTypes) {
  store::ClusterConfig config = test::DefaultTestConfig();
  test::TestCluster t(config);
  t.cluster.network().SetEndpointDown(1, true);
  auto client = t.cluster.NewClient(1);
  client->set_request_timeout(Millis(50));
  EXPECT_TRUE(client
                  ->PutSync("ticket", "k", {{"status", std::string("x")}},
                            WriteOptions{})
                  .status.IsTimedOut());
  EXPECT_TRUE(
      client->QuerySync(
          store::QuerySpec::View("assigned_to_view", "a"), ReadOptions{})
          .status.IsTimedOut());
  EXPECT_TRUE(client->QuerySync(
      store::QuerySpec::Index("ticket", "assigned_to", "a"), ReadOptions{})
                  .status.IsTimedOut());
}

}  // namespace
}  // namespace mvstore

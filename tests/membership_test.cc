// Elastic membership, end to end: runtime bootstrap (join streams the
// joiner's ranges, resumable across a crash), decommission (ranges stream
// to their new owners, hinted handoffs drain before the server leaves),
// hint rerouting, in-flight op retargeting, coordination rejection while
// draining, and a join -> leave -> rejoin lifecycle that must converge.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/nemesis.h"
#include "store/client.h"
#include "store/cluster.h"
#include "store/config.h"
#include "store/ring.h"
#include "store/server.h"
#include "tests/test_util.h"
#include "view/scrub.h"

namespace mvstore {
namespace {

using store::MembershipState;

store::ClusterConfig ChurnConfig() {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.max_servers = 6;  // spare slots for joins
  config.anti_entropy_interval = Millis(200);
  config.hint_replay_interval = Millis(100);
  config.rpc_timeout = Millis(50);
  config.join_stream_batch = 16;  // several slices per range
  config.decommission_drain_timeout = Seconds(5);
  return config;
}

/// Runs the simulation until `server` reaches `state` (or fails the test).
void AwaitMembership(store::Cluster& cluster, ServerId server,
                     MembershipState state) {
  for (int i = 0; i < 200; ++i) {
    if (cluster.server(server).membership() == state) return;
    cluster.RunFor(Millis(100));
  }
  FAIL() << "server " << server << " never reached the expected state";
}

/// Keys of `table` that `server` holds locally.
std::set<Key> LocalKeys(store::Cluster& cluster, ServerId server,
                        const std::string& table) {
  std::set<Key> keys;
  cluster.server(server).EngineFor(table).ForEach(
      [&](const Key& key, const storage::Row&) { keys.insert(key); });
  return keys;
}

TEST(MembershipTest, JoinStreamsOwnedRowsAndStartsServing) {
  test::TestCluster t(ChurnConfig(), test::TicketSchema(false, false));
  for (int k = 0; k < 120; ++k) {
    t.cluster.BootstrapLoadRow("ticket", "t" + std::to_string(k),
                               {{"status", std::string("open")}}, 100 + k);
  }

  auto joiner = t.cluster.JoinServer();
  ASSERT_TRUE(joiner.has_value());
  EXPECT_EQ(*joiner, 4);
  EXPECT_EQ(t.cluster.server(*joiner).membership(), MembershipState::kJoining);
  EXPECT_TRUE(t.cluster.ring().IsMember(*joiner));

  AwaitMembership(t.cluster, *joiner, MembershipState::kServing);
  const store::Metrics& m = t.cluster.metrics();
  EXPECT_EQ(m.member_joins_started, 1u);
  EXPECT_EQ(m.member_joins_completed, 1u);
  EXPECT_GT(m.member_ranges_streamed, 0u);
  EXPECT_GT(m.member_rows_streamed, 0u);

  // Every key the joiner now replicates was streamed onto it.
  const std::set<Key> local = LocalKeys(t.cluster, *joiner, "ticket");
  int owned = 0;
  for (int k = 0; k < 120; ++k) {
    const Key key = "t" + std::to_string(k);
    const auto replicas = t.cluster.ring().ReplicasFor(key, 3);
    if (std::find(replicas.begin(), replicas.end(), *joiner) ==
        replicas.end()) {
      continue;
    }
    ++owned;
    EXPECT_TRUE(local.count(key) != 0) << "joiner missing owned key " << key;
  }
  EXPECT_GT(owned, 0) << "joiner took over no keys at all";
}

TEST(MembershipTest, DecommissionStreamsRangesToNewOwnersAndLeaves) {
  test::TestCluster t(ChurnConfig(), test::TicketSchema(false, false));
  for (int k = 0; k < 120; ++k) {
    t.cluster.BootstrapLoadRow("ticket", "t" + std::to_string(k),
                               {{"status", std::string("open")}}, 100 + k);
  }

  ASSERT_TRUE(t.cluster.DecommissionServer(2));
  EXPECT_EQ(t.cluster.server(2).membership(), MembershipState::kDraining);
  EXPECT_FALSE(t.cluster.ring().IsMember(2));

  AwaitMembership(t.cluster, 2, MembershipState::kLeft);
  const store::Metrics& m = t.cluster.metrics();
  EXPECT_EQ(m.member_leaves_started, 1u);
  EXPECT_EQ(m.member_leaves_completed, 1u);
  EXPECT_EQ(m.member_drains_forced, 0u);
  EXPECT_EQ(t.cluster.server(2).hints_outstanding(), 0u);

  // Every key now has its full replica set among the remaining members,
  // each holding the row locally (the leaver streamed what they lacked).
  for (int k = 0; k < 120; ++k) {
    const Key key = "t" + std::to_string(k);
    for (ServerId replica : t.cluster.ring().ReplicasFor(key, 3)) {
      ASSERT_NE(replica, 2);
      EXPECT_TRUE(LocalKeys(t.cluster, replica, "ticket").count(key) != 0)
          << "replica " << replica << " missing " << key;
    }
  }
}

TEST(MembershipTest, DecommissionRejectedBelowReplicationFactor) {
  test::TestCluster t(ChurnConfig(), test::TicketSchema(false, false));
  ASSERT_TRUE(t.cluster.DecommissionServer(3));
  AwaitMembership(t.cluster, 3, MembershipState::kLeft);
  // 3 members left at replication factor 3: nobody else may leave.
  EXPECT_FALSE(t.cluster.DecommissionServer(2));
  EXPECT_EQ(t.cluster.server(2).membership(), MembershipState::kServing);
}

TEST(MembershipTest, DrainingCoordinatorRejectsNewOperations) {
  test::TestCluster t(ChurnConfig(), test::TicketSchema(false, false));
  t.cluster.BootstrapLoadRow("ticket", "t0",
                             {{"status", std::string("open")}}, 100);
  auto client = t.cluster.NewClient(/*coordinator=*/1);
  ASSERT_TRUE(t.cluster.DecommissionServer(1));

  const store::ReadResult result =
      client->GetSync("ticket", "t0", store::ReadOptions{});
  EXPECT_TRUE(result.status.IsUnavailable())
      << "draining coordinator must reject: " << result.status.ToString();
  // Client routing skips the drainer.
  EXPECT_NE(t.cluster.PickServingServer(1), 1);
}

TEST(MembershipTest, DecommissionDrainsHintsBeforeLeaving) {
  store::ClusterConfig config = ChurnConfig();
  config.num_servers = 4;
  test::TestCluster t(config, test::TicketSchema(false, false));
  auto client = t.cluster.NewClient(/*coordinator=*/0);

  // Crash a replica, then write through server 0 at W=1: server 0 stores
  // hints for the crashed replica's share of the writes.
  t.cluster.CrashServer(1);
  t.cluster.RunFor(Millis(10));
  store::WriteOptions w1;
  w1.quorum = 1;
  for (int k = 0; k < 40; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "h" + std::to_string(k),
                              {{"status", std::string("hinted")}}, w1)
                    .ok());
  }
  t.cluster.RunFor(Millis(200));
  ASSERT_GT(t.cluster.server(0).hints_outstanding(), 0u)
      << "setup failed: no hints were stored on the leaver";

  // Decommission the hint holder while the target is still down; the drain
  // must wait, then complete once the target comes back.
  ASSERT_TRUE(t.cluster.DecommissionServer(0));
  t.cluster.RunFor(Millis(300));
  t.cluster.RestartServer(1);

  AwaitMembership(t.cluster, 0, MembershipState::kLeft);
  const store::Metrics& m = t.cluster.metrics();
  EXPECT_EQ(m.member_leaves_completed, 1u);
  EXPECT_EQ(m.member_drains_forced, 0u);
  EXPECT_EQ(t.cluster.server(0).hints_outstanding(), 0u);

  // Nothing hinted was lost: every write is readable at full quorum.
  t.cluster.RunFor(Millis(500));  // anti-entropy settle
  auto reader = t.cluster.NewClient(t.cluster.PickServingServer(1));
  store::ReadOptions r3;
  r3.quorum = 3;
  for (int k = 0; k < 40; ++k) {
    const store::ReadResult result =
        reader->GetSync("ticket", "h" + std::to_string(k), r3);
    ASSERT_TRUE(result.ok()) << "h" << k;
    EXPECT_EQ(result.row.GetValue("status"), "hinted") << "h" << k;
  }
}

TEST(MembershipTest, ForcedDrainReroutesHintsAtDeadline) {
  store::ClusterConfig config = ChurnConfig();
  config.decommission_drain_timeout = Millis(400);
  test::TestCluster t(config, test::TicketSchema(false, false));
  auto client = t.cluster.NewClient(/*coordinator=*/0);

  t.cluster.CrashServer(1);
  t.cluster.RunFor(Millis(10));
  store::WriteOptions w1;
  w1.quorum = 1;
  for (int k = 0; k < 20; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "f" + std::to_string(k),
                              {{"status", std::string("forced")}}, w1)
                    .ok());
  }
  t.cluster.RunFor(Millis(100));
  ASSERT_GT(t.cluster.server(0).hints_outstanding(), 0u);

  // Target stays down past the drain deadline: the drain is forced, hints
  // reroute to the keys' current live replicas, and the server still leaves
  // with nothing outstanding.
  ASSERT_TRUE(t.cluster.DecommissionServer(0));
  AwaitMembership(t.cluster, 0, MembershipState::kLeft);
  EXPECT_GE(t.cluster.metrics().member_drains_forced, 1u);
  EXPECT_GT(t.cluster.metrics().member_hints_rerouted, 0u);
  EXPECT_EQ(t.cluster.server(0).hints_outstanding(), 0u);

  // After the crashed server returns, anti-entropy spreads the rerouted
  // writes; nothing acked is lost.
  t.cluster.RestartServer(1);
  t.cluster.RunFor(Seconds(1));
  auto reader = t.cluster.NewClient(t.cluster.PickServingServer(1));
  store::ReadOptions r3;
  r3.quorum = 3;
  for (int k = 0; k < 20; ++k) {
    const store::ReadResult result =
        reader->GetSync("ticket", "f" + std::to_string(k), r3);
    ASSERT_TRUE(result.ok()) << "f" << k;
    EXPECT_EQ(result.row.GetValue("status"), "forced") << "f" << k;
  }
}

TEST(MembershipTest, InflightWriteRetargetsWhenReplicaLeaves) {
  store::ClusterConfig config = ChurnConfig();
  config.network.base_latency = Millis(5);  // widen the in-flight window
  test::TestCluster t(config, test::TicketSchema(false, false));
  auto client = t.cluster.NewClient(/*coordinator=*/0);

  // Find a key whose replica set includes a leaver != coordinator.
  Key key;
  ServerId leaver = 0;
  bool found = false;
  for (int k = 0; k < 64 && !found; ++k) {
    const Key candidate = "r" + std::to_string(k);
    for (ServerId replica : t.cluster.ring().ReplicasFor(candidate, 3)) {
      if (replica != 0) {
        key = candidate;
        leaver = replica;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found);

  std::optional<store::WriteResult> outcome;
  store::WriteOptions w3;
  w3.quorum = 3;  // must hear from every replica, including the leaver
  client->Put("ticket", key, {{"status", std::string("inflight")}}, w3,
              [&outcome](store::WriteResult result) { outcome = result; });
  // Let the op reach the coordinator and fan out, then yank the replica out
  // of the ring before its (slow) ack can arrive.
  t.cluster.RunFor(Millis(7));
  ASSERT_TRUE(t.cluster.DecommissionServer(leaver));
  t.cluster.RunFor(Seconds(2));

  ASSERT_TRUE(outcome.has_value()) << "write never settled";
  EXPECT_TRUE(outcome->ok()) << outcome->status.ToString();
  EXPECT_GT(t.cluster.metrics().member_ops_retargeted, 0u);
}

TEST(MembershipTest, CrashDuringJoinResumesStreamingAfterRestart) {
  store::ClusterConfig config = ChurnConfig();
  config.join_stream_batch = 4;  // many slices: the crash lands mid-stream
  test::TestCluster t(config, test::TicketSchema(false, false));
  for (int k = 0; k < 150; ++k) {
    t.cluster.BootstrapLoadRow("ticket", "t" + std::to_string(k),
                               {{"status", std::string("open")}}, 100 + k);
  }

  auto joiner = t.cluster.JoinServer();
  ASSERT_TRUE(joiner.has_value());
  t.cluster.RunFor(Millis(2));  // a few slices in, far from done
  ASSERT_EQ(t.cluster.server(*joiner).membership(),
            MembershipState::kJoining);
  ASSERT_TRUE(t.cluster.CrashServer(*joiner));
  t.cluster.RunFor(Millis(50));
  ASSERT_TRUE(t.cluster.RestartServer(*joiner));

  AwaitMembership(t.cluster, *joiner, MembershipState::kServing);
  EXPECT_EQ(t.cluster.metrics().member_joins_completed, 1u);
  const std::set<Key> local = LocalKeys(t.cluster, *joiner, "ticket");
  for (int k = 0; k < 150; ++k) {
    const Key key = "t" + std::to_string(k);
    const auto replicas = t.cluster.ring().ReplicasFor(key, 3);
    if (std::find(replicas.begin(), replicas.end(), *joiner) !=
        replicas.end()) {
      EXPECT_TRUE(local.count(key) != 0) << "joiner missing " << key;
    }
  }
}

TEST(MembershipTest, JoinLeaveRejoinLifecycleConverges) {
  test::TestCluster t(ChurnConfig(), test::TicketSchema(false, false));
  auto client = t.cluster.NewClient(/*coordinator=*/1);
  store::WriteOptions w2;
  w2.quorum = 2;
  for (int k = 0; k < 60; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "t" + std::to_string(k),
                              {{"status", std::string("v1")}}, w2)
                    .ok());
  }

  auto joiner = t.cluster.JoinServer();
  ASSERT_TRUE(joiner.has_value());
  AwaitMembership(t.cluster, *joiner, MembershipState::kServing);

  ASSERT_TRUE(t.cluster.DecommissionServer(0));
  AwaitMembership(t.cluster, 0, MembershipState::kLeft);

  // The decommissioned slot is reusable: the next join activates it.
  auto rejoined = t.cluster.JoinServer();
  ASSERT_TRUE(rejoined.has_value());
  EXPECT_EQ(*rejoined, 0);
  AwaitMembership(t.cluster, 0, MembershipState::kServing);
  EXPECT_EQ(t.cluster.metrics().member_joins_completed, 2u);

  t.cluster.RunFor(Seconds(1));  // anti-entropy settle
  auto reader = t.cluster.NewClient(t.cluster.PickServingServer(1));
  store::ReadOptions r3;
  r3.quorum = 3;
  for (int k = 0; k < 60; ++k) {
    const store::ReadResult result =
        reader->GetSync("ticket", "t" + std::to_string(k), r3);
    ASSERT_TRUE(result.ok()) << "t" << k;
    EXPECT_EQ(result.row.GetValue("status"), "v1") << "t" << k;
  }
}

TEST(MembershipTest, ViewConvergesAcrossDecommission) {
  store::ClusterConfig config = ChurnConfig();
  config.view_scrub_interval = Millis(200);  // recovers leave-orphaned work
  test::TestCluster t(config);  // full ticket schema with the view
  auto client = t.cluster.NewClient(/*coordinator=*/1);
  store::WriteOptions w2;
  w2.quorum = 2;
  for (int k = 0; k < 40; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "t" + std::to_string(k),
                              {{"assigned_to", "a" + std::to_string(k % 7)},
                               {"status", std::string("open")}},
                              w2)
                    .ok());
  }

  // Decommission while propagations from a second write wave are in flight.
  for (int k = 0; k < 40; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "t" + std::to_string(k),
                              {{"assigned_to", "b" + std::to_string(k % 5)}},
                              w2)
                    .ok());
  }
  ASSERT_TRUE(t.cluster.DecommissionServer(3));
  AwaitMembership(t.cluster, 3, MembershipState::kLeft);

  t.Quiesce();
  t.cluster.RunFor(Seconds(1));  // scrub window for orphan recovery
  t.Quiesce();

  const store::ViewDef& view = *t.cluster.schema().GetView("assigned_to_view");
  const auto expected = view::ComputeExpectedView(t.cluster, view);
  const auto exposed = view::ReadConvergedView(t.cluster, view);
  ASSERT_EQ(expected.size(), exposed.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].view_key, exposed[i].view_key) << i;
    EXPECT_EQ(expected[i].base_key, exposed[i].base_key) << i;
  }
}

TEST(MembershipTest, ChurnScheduleConvergesUnderNemesis) {
  store::ClusterConfig config = ChurnConfig();
  config.view_scrub_interval = Millis(300);
  test::TestCluster t(config);
  auto client = t.cluster.NewClient(/*coordinator=*/1);
  store::WriteOptions w2;
  w2.quorum = 2;
  for (int k = 0; k < 30; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "t" + std::to_string(k),
                              {{"assigned_to", "a" + std::to_string(k % 5)},
                               {"status", std::string("open")}},
                              w2)
                    .ok());
  }

  sim::Nemesis nemesis(
      &t.cluster.simulation(), &t.cluster.network(),
      [&t](sim::EndpointId s) { t.cluster.CrashServer(s); },
      [&t](sim::EndpointId s) { t.cluster.RestartServer(s); });
  nemesis.SetMembershipCallbacks(
      [&t] { t.cluster.JoinServer(); },
      [&t](sim::EndpointId s) { t.cluster.DecommissionServer(s); });
  sim::NemesisOptions options;
  options.horizon = Seconds(4);
  options.num_servers = 4;
  options.membership_churn = 2;
  options.min_churn_gap = Millis(500);
  options.max_churn_gap = Seconds(1);
  options.crashes = 1;
  options.partitions = 1;
  options.drop_surges = 0;
  options.latency_spikes = 0;
  nemesis.Schedule(sim::GenerateRandomSchedule(Rng(7), options));
  nemesis.HealAllAt(options.horizon);
  t.cluster.RunFor(options.horizon + Seconds(1));

  // Let membership operations finish, then quiesce and compare.
  const store::Metrics& m = t.cluster.metrics();
  for (int i = 0; i < 100 &&
                  (m.member_joins_completed < m.member_joins_started ||
                   m.member_leaves_completed < m.member_leaves_started);
       ++i) {
    t.cluster.RunFor(Millis(100));
  }
  EXPECT_EQ(m.member_joins_completed, m.member_joins_started);
  EXPECT_EQ(m.member_leaves_completed, m.member_leaves_started);
  t.Quiesce();
  t.cluster.RunFor(Seconds(1));
  t.Quiesce();

  const store::ViewDef& view = *t.cluster.schema().GetView("assigned_to_view");
  const auto expected = view::ComputeExpectedView(t.cluster, view);
  const auto exposed = view::ReadConvergedView(t.cluster, view);
  EXPECT_EQ(expected.size(), exposed.size());
}

}  // namespace
}  // namespace mvstore

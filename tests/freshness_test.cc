// The freshness contract (ISSUE 7): cluster-wide freshness tracking,
// bounded-staleness view reads, and the adaptive MV/SI router.
//
// Layer 1 exercises the FreshnessTracker state machine directly; layer 2
// drives bounded ViewGets end-to-end through the cluster, including the
// park/repair/fallback ladder; layer 3 is the property test the acceptance
// criteria name: under a crash/restart nemesis with majority writes, a
// kBoundedStaleness read never returns a row older than its bound.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "store/client.h"
#include "store/freshness.h"
#include "tests/test_util.h"

namespace mvstore {
namespace {

using store::ReadConsistency;
using store::QuerySpec;
using store::ServedBy;
using test::TestCluster;

// ---------------------------------------------------------------------------
// FreshnessTracker unit tests.
// ---------------------------------------------------------------------------

TEST(FreshnessTrackerTest, IntentBlocksUntilApplied) {
  store::FreshnessTracker tracker;
  const std::uint64_t intent = tracker.RegisterIntent("v", "k1", 100, 0, 0);
  ASSERT_NE(intent, 0u);
  tracker.ResolvePartitions(intent, {"alice"});

  // Blocks reads that need everything up to ts 100; not reads whose cutoff
  // predates the intent.
  EXPECT_EQ(tracker.BlockersBefore("v", "alice", 100).live, 1u);
  EXPECT_EQ(tracker.BlockersBefore("v", "alice", 99).live, 0u);
  EXPECT_EQ(tracker.BlockersBefore("v", "bob", 100).live, 0u);

  // FreshAsOf dips to just before the oldest pending intent.
  EXPECT_EQ(tracker.FreshAsOf("v", "alice", 500), 99);
  EXPECT_EQ(tracker.FreshAsOf("v", "bob", 500), 500);

  tracker.MarkApplied(intent);
  EXPECT_EQ(tracker.BlockersBefore("v", "alice", 100).live, 0u);
  EXPECT_EQ(tracker.FreshAsOf("v", "alice", 500), 500);
  EXPECT_EQ(tracker.AppliedHighWater("v", "alice"), 100);
}

TEST(FreshnessTrackerTest, UnresolvedIntentBlocksEveryPartition) {
  store::FreshnessTracker tracker;
  tracker.RegisterIntent("v", "k1", 100, 0, 0);
  // Until the propagation's collection step names the affected partitions,
  // the intent must pessimistically block all of them.
  EXPECT_EQ(tracker.BlockersBefore("v", "alice", 100).live, 1u);
  EXPECT_EQ(tracker.BlockersBefore("v", "anything", 100).live, 1u);
}

TEST(FreshnessTrackerTest, WoundedBlocksUntilFamilyAudited) {
  store::FreshnessTracker tracker;
  const std::uint64_t intent = tracker.RegisterIntent("v", "k1", 100, 0, 0);
  tracker.ResolvePartitions(intent, {"alice"});
  tracker.MarkWounded(intent);

  const auto blockers = tracker.BlockersBefore("v", "alice", 100);
  EXPECT_EQ(blockers.live, 0u);
  EXPECT_EQ(blockers.wounded, 1u);
  ASSERT_EQ(blockers.wounded_keys.size(), 1u);
  EXPECT_EQ(blockers.wounded_keys[0], "k1");

  // MarkApplied on a wounded intent settles it (late completion notice).
  EXPECT_EQ(tracker.FamilyAudited("v", "k1"), 1u);
  EXPECT_EQ(tracker.BlockersBefore("v", "alice", 100).wounded, 0u);
}

TEST(FreshnessTrackerTest, ImprovementCallbackFiresOnApply) {
  store::FreshnessTracker tracker;
  const std::uint64_t intent = tracker.RegisterIntent("v", "k1", 100, 0, 0);
  int fired = 0;
  tracker.NotifyOnImprovement("v", [&fired] { ++fired; });
  tracker.RegisterIntent("w", "k2", 100, 0, 0);  // other view: no fire
  EXPECT_EQ(fired, 0);
  tracker.MarkApplied(intent);
  EXPECT_EQ(fired, 1);
  tracker.MarkApplied(intent);  // idempotent: one-shot already consumed
  EXPECT_EQ(fired, 1);
}

TEST(FreshnessTrackerTest, LagEstimateIsEwma) {
  store::FreshnessTracker tracker;
  EXPECT_LT(tracker.LagEstimate("v"), 0);  // unprimed
  tracker.RecordLag("v", 1000, 0.5);
  EXPECT_EQ(tracker.LagEstimate("v"), 1000);
  tracker.RecordLag("v", 2000, 0.5);
  EXPECT_EQ(tracker.LagEstimate("v"), 1500);
}

// ---------------------------------------------------------------------------
// End-to-end bounded reads.
// ---------------------------------------------------------------------------

store::ClusterConfig SlowPropagationConfig() {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.perf.propagation_dispatch_mu = std::log(50000.0);  // ~50 ms
  config.perf.propagation_dispatch_sigma = 0.0;
  config.perf.propagation_dispatch_min = Millis(50);
  return config;
}

void LoadTicket(TestCluster& t, const std::string& key,
                const std::string& assignee, const std::string& status,
                Timestamp ts) {
  t.cluster.BootstrapLoadRow(
      "ticket", key, {{"assigned_to", assignee}, {"status", status}}, ts);
}

TEST(BoundedStalenessTest, ProvenBoundServesFromView) {
  TestCluster t;
  LoadTicket(t, "1", "rliu", "open", 100);
  t.Quiesce();
  auto client = t.cluster.NewClient(0);

  auto result = client->QuerySync(
      QuerySpec::View("assigned_to_view", "rliu"),
      {.consistency = ReadConsistency::kBoundedStaleness,
       .max_staleness = Millis(500)});
  ASSERT_TRUE(result.ok()) << result.status;
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.served_by, ServedBy::kView);
  EXPECT_EQ(result.payload_kind(), store::ReadPayload::kRecords);
  // No pending intents: the view is fresh as of "now" (minus delivery).
  EXPECT_NE(result.freshness, kNullTimestamp);
  const Timestamp now_ts = store::kClientTimestampEpoch + t.cluster.Now();
  EXPECT_LE(now_ts - result.freshness, Millis(5));
}

TEST(BoundedStalenessTest, ParksUntilPropagationApplies) {
  // Propagation dispatch ~5 ms; the bounded read arrives while the intent
  // is pending and must park until it applies, then return the NEW value.
  store::ClusterConfig config = test::DefaultTestConfig();
  config.perf.propagation_dispatch_mu = std::log(5000.0);
  config.perf.propagation_dispatch_sigma = 0.0;
  config.perf.propagation_dispatch_min = Millis(5);
  config.freshness_wait_max = Millis(100);
  config.freshness_router = false;  // force the park path
  TestCluster t(config);
  LoadTicket(t, "1", "rliu", "open", 100);
  t.Quiesce();
  auto client = t.cluster.NewClient(0);

  ASSERT_TRUE(client
                  ->PutSync("ticket", "1",
                            {{"status", std::string("resolved")}},
                            store::WriteOptions{})
                  .ok());
  // Tight bound: the pending intent (registered at the Put) blocks it.
  auto result = client->QuerySync(
      QuerySpec::View("assigned_to_view", "rliu"),
      {.consistency = ReadConsistency::kBoundedStaleness,
       .max_staleness = Micros(100)});
  ASSERT_TRUE(result.ok()) << result.status;
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.served_by, ServedBy::kView);
  EXPECT_EQ(result.records[0].cells.GetValue("status").value_or(""),
            "resolved");
  EXPECT_GT(t.cluster.metrics().freshness_bound_misses, 0u);
  EXPECT_GT(t.cluster.metrics().freshness_bound_waits, 0u);
}

TEST(BoundedStalenessTest, RouterFallsBackToSiWhenBoundUnsatisfiable) {
  // Propagation takes ~50 ms; the bound is 1 ms. Once the router's lag
  // estimate is primed, waiting is pointless — the read must be served by
  // the secondary index, fresh by construction.
  store::ClusterConfig config = SlowPropagationConfig();
  config.freshness_router = true;
  TestCluster t(config);
  LoadTicket(t, "1", "rliu", "open", 100);
  t.Quiesce();
  auto client = t.cluster.NewClient(0);

  // Prime the lag EWMA with one completed propagation.
  ASSERT_TRUE(client
                  ->PutSync("ticket", "1", {{"status", std::string("s1")}},
                            store::WriteOptions{})
                  .ok());
  t.Quiesce();

  ASSERT_TRUE(client
                  ->PutSync("ticket", "1", {{"status", std::string("s2")}},
                            store::WriteOptions{})
                  .ok());
  auto result = client->QuerySync(
      QuerySpec::View("assigned_to_view", "rliu"),
      {.consistency = ReadConsistency::kBoundedStaleness,
       .max_staleness = Micros(100)});
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.served_by, ServedBy::kSiPath);
  ASSERT_EQ(result.records.size(), 1u);
  // The SI path reads the base table's current state: the new value.
  EXPECT_EQ(result.records[0].cells.GetValue("status").value_or(""), "s2");
  EXPECT_GT(t.cluster.metrics().freshness_fallback_si, 0u);
  t.Quiesce();
}

TEST(BoundedStalenessTest, FallsBackToBaseScanWithoutIndex) {
  store::ClusterConfig config = SlowPropagationConfig();
  TestCluster t(config, test::TicketSchema(/*with_index=*/false));
  LoadTicket(t, "1", "rliu", "open", 100);
  t.Quiesce();
  auto client = t.cluster.NewClient(0);

  ASSERT_TRUE(client
                  ->PutSync("ticket", "1", {{"status", std::string("s1")}},
                            store::WriteOptions{})
                  .ok());
  t.Quiesce();
  ASSERT_TRUE(client
                  ->PutSync("ticket", "1", {{"status", std::string("s2")}},
                            store::WriteOptions{})
                  .ok());
  auto result = client->QuerySync(
      QuerySpec::View("assigned_to_view", "rliu"),
      {.consistency = ReadConsistency::kBoundedStaleness,
       .max_staleness = Micros(100)});
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.served_by, ServedBy::kBaseScan);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].cells.GetValue("status").value_or(""), "s2");
  EXPECT_GT(t.cluster.metrics().freshness_fallback_base, 0u);
  t.Quiesce();
}

TEST(BoundedStalenessTest, WoundedIntentTriggersTargetedRepair) {
  TestCluster t;
  LoadTicket(t, "1", "rliu", "open", 100);
  t.Quiesce();

  // Simulate the residue of a crashed propagation: a wounded intent with no
  // live propagation behind it. The view itself is healthy (bootstrap), so
  // the targeted repair audits the family, clears the wound, and the read
  // proceeds from the view.
  const std::uint64_t intent =
      t.cluster.freshness().RegisterIntent("assigned_to_view", "1", 150, 0, 0);
  t.cluster.freshness().ResolvePartitions(intent, {"rliu"});
  t.cluster.freshness().MarkWounded(intent);

  auto client = t.cluster.NewClient(0);
  auto result = client->QuerySync(
      QuerySpec::View("assigned_to_view", "rliu"),
      {.consistency = ReadConsistency::kBoundedStaleness,
       .max_staleness = Micros(100)});
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.served_by, ServedBy::kView);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_GT(t.cluster.metrics().freshness_targeted_repairs, 0u);
  EXPECT_EQ(t.cluster.freshness()
                .BlockersBefore("assigned_to_view", "rliu",
                                store::kClientTimestampEpoch + t.cluster.Now())
                .wounded,
            0u);
}

TEST(ReadResultTest, PayloadKindMatchesOperation) {
  TestCluster t;
  LoadTicket(t, "1", "rliu", "open", 100);
  t.Quiesce();
  auto client = t.cluster.NewClient(0);

  auto get = client->GetSync("ticket", "1", store::ReadOptions{});
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get.payload_kind(), store::ReadPayload::kRow);
  EXPECT_EQ(get.served_by, ServedBy::kBaseScan);

  auto view = client->QuerySync(
      QuerySpec::View("assigned_to_view", "rliu"), store::ReadOptions{});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.payload_kind(), store::ReadPayload::kRecords);

  auto index =
      client->QuerySync(
          QuerySpec::Index("ticket", "assigned_to", "rliu"),
          store::ReadOptions{});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.payload_kind(), store::ReadPayload::kRows);
  EXPECT_EQ(index.served_by, ServedBy::kSiPath);
  EXPECT_NE(index.freshness, kNullTimestamp);
}

TEST(ReadResultTest, BoundedBaseGetClaimsCurrentFreshness) {
  TestCluster t;
  LoadTicket(t, "1", "rliu", "open", 100);
  t.Quiesce();
  auto client = t.cluster.NewClient(0);

  // kBoundedStaleness on a base Get widens the quorum to all replicas and
  // claims freshness "now".
  auto result = client->GetSync(
      "ticket", "1", {.consistency = ReadConsistency::kBoundedStaleness});
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.freshness, kNullTimestamp);
  const Timestamp now_ts = store::kClientTimestampEpoch + t.cluster.Now();
  EXPECT_LE(now_ts - result.freshness, Millis(5));
}

// ---------------------------------------------------------------------------
// The acceptance property: under a nemesis schedule, a bounded read never
// returns a row older than its bound.
// ---------------------------------------------------------------------------

TEST(BoundedStalenessPropertyTest, NeverServesOlderThanBoundUnderNemesis) {
  store::ClusterConfig config = test::DefaultTestConfig();
  // Majority writes: an acked write survives any single crash, so the
  // "every write older than the bound is reflected" obligation is
  // well-defined even while servers die.
  config.default_write_quorum = 2;
  config.freshness_wait_max = Millis(50);
  TestCluster t(config);

  const std::vector<std::string> assignees = {"alice", "bob", "carol"};
  const int kKeys = 6;
  for (int i = 0; i < kKeys; ++i) {
    LoadTicket(t, std::to_string(i), assignees[i % assignees.size()],
               "s-boot", 100 + i);
  }
  t.Quiesce();

  // Reader and writer both coordinate through server 0; the nemesis crashes
  // and restarts replicas 1..3 so quorum ops and propagations keep hitting
  // failures without killing the tracker's own coordinator.
  auto writer = t.cluster.NewClient(0);
  auto reader = t.cluster.NewClient(0);
  writer->set_request_timeout(Millis(200));
  reader->set_request_timeout(Millis(500));

  const SimTime kBound = Millis(50);
  Rng rng(0xF5E5);

  // Acked write history per base key: (write ts -> sequence number), and
  // the value each sequence produced. Values encode their sequence.
  std::map<std::string, std::map<Timestamp, int>> acked;
  int checked_reads = 0;

  for (int round = 0; round < 120; ++round) {
    // Nemesis step: flip one replica's liveness with probability ~1/4.
    if (rng.UniformInt(0, 3) == 0) {
      const auto victim = static_cast<ServerId>(rng.UniformInt(1, 3));
      if (!t.cluster.CrashServer(victim)) t.cluster.RestartServer(victim);
    }

    // One write: bump a random key's status.
    const std::string key = std::to_string(rng.UniformInt(0, kKeys - 1));
    const int seq = round;
    bool write_done = false;
    writer->Put("ticket", key, {{"status", "s" + std::to_string(seq)}},
                store::WriteOptions{},
                [&, key, seq](store::WriteResult w) {
                  write_done = true;
                  if (w.ok()) acked[key][w.ts] = seq;
                });
    while (!write_done) ASSERT_TRUE(t.cluster.simulation().Step());

    // One bounded read against a random assignee.
    const std::string& assignee =
        assignees[static_cast<std::size_t>(rng.UniformInt(0, 2))];
    const SimTime issue_now = t.cluster.Now();
    bool read_done = false;
    reader->Query(
        QuerySpec::View("assigned_to_view", assignee),
        {.consistency = ReadConsistency::kBoundedStaleness,
         .max_staleness = kBound}, [&](store::ReadResult r) {
          read_done = true;
          if (!r.ok()) return;  // failing is allowed; serving stale is not
          ++checked_reads;
          // Every record must reflect at least the newest acked write
          // whose timestamp is <= (issue time - bound).
          const Timestamp need =
              store::kClientTimestampEpoch + issue_now - kBound;
          for (const auto& record : r.records) {
            auto history = acked.find(record.base_key);
            if (history == acked.end()) continue;
            int min_seq = -1;
            for (const auto& [ts, seq_at] : history->second) {
              if (ts <= need) min_seq = seq_at;
            }
            if (min_seq < 0) continue;  // no write old enough to be owed
            const std::string status =
                record.cells.GetValue("status").value_or("");
            ASSERT_TRUE(status.size() > 1 && status[0] == 's' &&
                        status != "s-boot")
                << "bounded read returned pre-bound bootstrap value "
                << status;
            const int got_seq = std::atoi(status.c_str() + 1);
            EXPECT_GE(got_seq, min_seq)
                << "bounded read on " << record.base_key
                << " returned a value older than the staleness bound";
          }
        });
    while (!read_done) ASSERT_TRUE(t.cluster.simulation().Step());
  }

  // Bring everyone back and drain.
  for (ServerId id = 1; id <= 3; ++id) t.cluster.RestartServer(id);
  t.Quiesce();
  EXPECT_GT(checked_reads, 20) << "nemesis starved the bounded reads";
}

}  // namespace
}  // namespace mvstore

// Concurrent update propagation: the paper's Example 2 (both propagation
// orders), Theorem 1's case analysis, lock-service vs dedicated-propagator
// serialization, and read behaviour during promotions.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "store/client.h"
#include "store/codec.h"
#include "tests/test_util.h"
#include "view/scrub.h"
#include "view/view_row.h"

namespace mvstore {
namespace {

using store::kClientTimestampEpoch;
using store::Mutation;
using store::PropagationMode;
using test::TestCluster;

constexpr Timestamp kT0 = kClientTimestampEpoch + 1000;

store::ClusterConfig ConfigFor(PropagationMode mode) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.propagation_mode = mode;
  return config;
}

class ViewConcurrentTest : public ::testing::TestWithParam<PropagationMode> {};

INSTANTIATE_TEST_SUITE_P(Modes, ViewConcurrentTest,
                         ::testing::Values(PropagationMode::kLockService,
                                           PropagationMode::kDedicatedPropagators),
                         [](const auto& info) {
                           return info.param == PropagationMode::kLockService
                                      ? "LockService"
                                      : "DedicatedPropagators";
                         });

void LoadTicket2(store::Cluster& cluster) {
  cluster.BootstrapLoadRow(
      "ticket", "2", {{"assigned_to", std::string("kmsalem")},
                      {"status", std::string("open")}},
      100);
}

std::map<Key, Value> Assignments(store::Cluster& cluster) {
  // Who does the (converged) view say ticket 2 belongs to?
  std::map<Key, Value> owners;
  for (const auto& record :
       view::ReadConvergedView(cluster, test::TicketView(cluster))) {
    owners[record.base_key] = record.view_key;
  }
  return owners;
}

// Example 2, order 1: the first client's update (rliu, smaller timestamp)
// propagates first, then the second client's (cjin, larger timestamp).
TEST_P(ViewConcurrentTest, Example2FirstUpdatePropagatesFirst) {
  TestCluster t(ConfigFor(GetParam()));
  LoadTicket2(t.cluster);
  auto c1 = t.cluster.NewClient(0);
  auto c2 = t.cluster.NewClient(1);

  // Issue in submission order rliu -> cjin; dispatch delay is constant, so
  // propagation follows submission order.
  ASSERT_TRUE(c1->PutSync("ticket", "2", {{"assigned_to", std::string("rliu")}},
                          {.ts = kT0 + 1})
                  .ok());
  ASSERT_TRUE(c2->PutSync("ticket", "2", {{"assigned_to", std::string("cjin")}},
                          {.ts = kT0 + 2})
                  .ok());
  t.Quiesce();

  EXPECT_EQ(Assignments(t.cluster), (std::map<Key, Value>{{"2", "cjin"}}));
  view::ScrubReport report =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(report.clean()) << report.Summary();
  // Figure 2's structure: stale rows under kmsalem and rliu (plus the
  // family's permanent sentinel anchor), live under cjin.
  EXPECT_EQ(report.stale_rows, 3u);
  EXPECT_EQ(report.live_rows, 1u);
}

// Example 2, order 2: the second client's update (cjin, larger timestamp)
// propagates FIRST. The first client's update must then discover, via the
// stale row, that it lost, and insert itself as a stale row.
TEST_P(ViewConcurrentTest, Example2SecondUpdatePropagatesFirst) {
  TestCluster t(ConfigFor(GetParam()));
  LoadTicket2(t.cluster);
  auto c1 = t.cluster.NewClient(0);
  auto c2 = t.cluster.NewClient(1);

  // cjin carries the LARGER timestamp but is issued (and so propagated)
  // first; rliu's smaller-timestamped update propagates second.
  ASSERT_TRUE(c2->PutSync("ticket", "2", {{"assigned_to", std::string("cjin")}},
                          {.ts = kT0 + 2})
                  .ok());
  t.Quiesce();  // cjin's propagation completes first
  ASSERT_TRUE(c1->PutSync("ticket", "2", {{"assigned_to", std::string("rliu")}},
                          {.ts = kT0 + 1})
                  .ok());
  t.Quiesce();

  EXPECT_EQ(Assignments(t.cluster), (std::map<Key, Value>{{"2", "cjin"}}));
  view::ScrubReport report =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(report.clean()) << report.Summary();
  EXPECT_EQ(report.stale_rows, 3u);  // kmsalem + rliu + the sentinel anchor
  EXPECT_EQ(report.live_rows, 1u);
}

// Both updates genuinely in flight at once (no quiescing in between): the
// concurrency-control mode under test must serialize their propagations.
TEST_P(ViewConcurrentTest, Example2FullyConcurrent) {
  TestCluster t(ConfigFor(GetParam()));
  LoadTicket2(t.cluster);
  auto c1 = t.cluster.NewClient(0);
  auto c2 = t.cluster.NewClient(1);

  int done = 0;
  c1->Put("ticket", "2", {{"assigned_to", std::string("rliu")}},
          {.ts = kT0 + 1}, [&done](store::WriteResult w) {
            ASSERT_TRUE(w.ok());
            ++done;
          });
  c2->Put("ticket", "2", {{"assigned_to", std::string("cjin")}},
          {.ts = kT0 + 2}, [&done](store::WriteResult w) {
            ASSERT_TRUE(w.ok());
            ++done;
          });
  while (done < 2) ASSERT_TRUE(t.cluster.simulation().Step());
  t.Quiesce();

  EXPECT_EQ(Assignments(t.cluster), (std::map<Key, Value>{{"2", "cjin"}}));
  view::ScrubReport report =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(report.clean()) << report.Summary();
}

// Theorem 1 case 2b: the propagating key already exists as a STALE row.
// Re-setting the view key back to a previously used value must promote the
// existing stale row back to live.
TEST_P(ViewConcurrentTest, ReassignBackToFormerAssignee) {
  TestCluster t(ConfigFor(GetParam()));
  LoadTicket2(t.cluster);
  auto client = t.cluster.NewClient();

  ASSERT_TRUE(client
                  ->PutSync("ticket", "2", {{"assigned_to", std::string("rliu")}},
                          {.ts = kT0 + 1})
                  .ok());
  t.Quiesce();
  ASSERT_TRUE(client
                  ->PutSync("ticket", "2",
                            {{"assigned_to", std::string("kmsalem")}}, {.ts = kT0 + 2})
                  .ok());
  t.Quiesce();

  EXPECT_EQ(Assignments(t.cluster), (std::map<Key, Value>{{"2", "kmsalem"}}));
  view::ScrubReport report =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(report.clean()) << report.Summary();
  // kmsalem's old stale row was promoted back to live; rliu is stale.
  EXPECT_EQ(report.live_rows, 1u);
}

// A materialized-column update racing a view-key update on the same row:
// the status value must land on whichever row ends up live.
TEST_P(ViewConcurrentTest, MaterializedRacesViewKeyUpdate) {
  TestCluster t(ConfigFor(GetParam()));
  LoadTicket2(t.cluster);
  auto c1 = t.cluster.NewClient(0);
  auto c2 = t.cluster.NewClient(1);

  int done = 0;
  c1->Put("ticket", "2", {{"assigned_to", std::string("rliu")}},
          {.ts = kT0 + 1}, [&done](store::WriteResult) { ++done; });
  c2->Put("ticket", "2", {{"status", std::string("resolved")}},
          {.ts = kT0 + 2}, [&done](store::WriteResult) { ++done; });
  while (done < 2) ASSERT_TRUE(t.cluster.simulation().Step());
  t.Quiesce();

  auto client = t.cluster.NewClient();
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "rliu"), {.quorum = 2});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.records.size(), 1u);
  EXPECT_EQ(records.records[0].cells.GetValue("status").value_or(""), "resolved");
  EXPECT_TRUE(
      view::CheckView(t.cluster, test::TicketView(t.cluster)).clean());
}

// Delete racing a reassignment, both orders by timestamp.
TEST_P(ViewConcurrentTest, DeleteRacesReassignment) {
  for (const bool delete_wins : {true, false}) {
    TestCluster t(ConfigFor(GetParam()));
    LoadTicket2(t.cluster);
    auto c1 = t.cluster.NewClient(0);
    auto c2 = t.cluster.NewClient(1);

    const Timestamp ts_delete = delete_wins ? kT0 + 2 : kT0 + 1;
    const Timestamp ts_assign = delete_wins ? kT0 + 1 : kT0 + 2;
    int done = 0;
    c1->Delete("ticket", "2", {"assigned_to"}, {.ts = ts_delete},
               [&done](store::WriteResult) { ++done; });
    c2->Put("ticket", "2", {{"assigned_to", std::string("rliu")}},
            {.ts = ts_assign}, [&done](store::WriteResult) { ++done; });
    while (done < 2) ASSERT_TRUE(t.cluster.simulation().Step());
    t.Quiesce();

    const auto owners = Assignments(t.cluster);
    if (delete_wins) {
      EXPECT_TRUE(owners.empty()) << "expected no visible assignment";
    } else {
      EXPECT_EQ(owners, (std::map<Key, Value>{{"2", "rliu"}}));
    }
    view::ScrubReport report =
        view::CheckView(t.cluster, test::TicketView(t.cluster));
    EXPECT_TRUE(report.clean())
        << report.Summary() << " delete_wins=" << delete_wins;
  }
}

// Many clients hammering the same row's view key: everything must still
// converge to the largest timestamp, with one live row and clean chains.
TEST_P(ViewConcurrentTest, HotRowConvergence) {
  TestCluster t(ConfigFor(GetParam()));
  LoadTicket2(t.cluster);

  constexpr int kClients = 6;
  constexpr int kUpdatesPerClient = 5;
  std::vector<std::unique_ptr<store::Client>> clients;
  int done = 0;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(t.cluster.NewClient(static_cast<ServerId>(c % 4)));
  }
  for (int round = 0; round < kUpdatesPerClient; ++round) {
    for (int c = 0; c < kClients; ++c) {
      const std::string who = "user" + std::to_string(c);
      const Timestamp ts = kT0 + round * 100 + c;
      clients[static_cast<std::size_t>(c)]->Put(
          "ticket", "2", {{"assigned_to", who}}, {.ts = ts},
          [&done](store::WriteResult) { ++done; });
    }
  }
  while (done < kClients * kUpdatesPerClient) {
    ASSERT_TRUE(t.cluster.simulation().Step());
  }
  t.Quiesce();

  // Largest timestamp wins: round 4, client 5.
  EXPECT_EQ(Assignments(t.cluster),
            (std::map<Key, Value>{{"2", "user5"}}));
  view::ScrubReport report =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(report.clean()) << report.Summary();
  EXPECT_EQ(t.cluster.metrics().propagations_abandoned, 0u);
  if (GetParam() == PropagationMode::kLockService) {
    // The hot row must actually have serialized through the lock service.
    EXPECT_GT(t.views->lock_service().grants(), 0u);
  }
}

}  // namespace
}  // namespace mvstore

// Schema/catalog validation: table, index, and view definitions.

#include <gtest/gtest.h>

#include <vector>

#include "store/codec.h"
#include "store/schema.h"

namespace mvstore::store {
namespace {

ViewDef SampleView() {
  ViewDef view;
  view.name = "by_owner";
  view.base_table = "items";
  view.view_key_column = "owner";
  view.materialized_columns = {"state"};
  return view;
}

TEST(SchemaTest, CreateTableAndLookup) {
  Schema schema;
  EXPECT_TRUE(schema.CreateTable({.name = "items"}).ok());
  ASSERT_NE(schema.GetTable("items"), nullptr);
  EXPECT_FALSE(schema.GetTable("items")->composite_keys);
  EXPECT_EQ(schema.GetTable("nope"), nullptr);
}

TEST(SchemaTest, DuplicateTableRejected) {
  Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "items"}).ok());
  EXPECT_EQ(schema.CreateTable({.name = "items"}).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, EmptyTableNameRejected) {
  Schema schema;
  EXPECT_EQ(schema.CreateTable({.name = ""}).code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, IndexRequiresTable) {
  Schema schema;
  EXPECT_EQ(schema.CreateIndex({.table = "items", .column = "owner"}).code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, IndexLookupAndDuplicates) {
  Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "items"}).ok());
  ASSERT_TRUE(schema.CreateIndex({.table = "items", .column = "owner"}).ok());
  EXPECT_NE(schema.FindIndex("items", "owner"), nullptr);
  EXPECT_EQ(schema.FindIndex("items", "state"), nullptr);
  EXPECT_EQ(schema.CreateIndex({.table = "items", .column = "owner"}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.IndexesOn("items").size(), 1u);
}

TEST(SchemaTest, ViewCreatesBackingTable) {
  Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "items"}).ok());
  ASSERT_TRUE(schema.CreateView(SampleView()).ok());
  const TableDef* backing = schema.GetTable("by_owner");
  ASSERT_NE(backing, nullptr);
  EXPECT_TRUE(backing->composite_keys);
  EXPECT_TRUE(backing->is_view_backing);
  ASSERT_EQ(schema.ViewsOn("items").size(), 1u);
  EXPECT_EQ(schema.ViewsOn("items")[0]->name, "by_owner");
  EXPECT_NE(schema.GetView("by_owner"), nullptr);
}

TEST(SchemaTest, ViewRequiresBaseTable) {
  Schema schema;
  EXPECT_EQ(schema.CreateView(SampleView()).code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ViewsOnViewsRejected) {
  Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "items"}).ok());
  ASSERT_TRUE(schema.CreateView(SampleView()).ok());
  ViewDef nested = SampleView();
  nested.name = "nested";
  nested.base_table = "by_owner";
  EXPECT_EQ(schema.CreateView(nested).code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ViewNameCollisionRejected) {
  Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "items"}).ok());
  ViewDef clash = SampleView();
  clash.name = "items";
  EXPECT_EQ(schema.CreateView(clash).code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ViewKeyColumnCannotAlsoBeMaterialized) {
  Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "items"}).ok());
  ViewDef view = SampleView();
  view.materialized_columns.push_back("owner");
  EXPECT_EQ(schema.CreateView(view).code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ReservedColumnNamesRejected) {
  Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "items"}).ok());
  ViewDef view = SampleView();
  view.view_key_column = "__next";
  EXPECT_EQ(schema.CreateView(view).code(), StatusCode::kInvalidArgument);
  view = SampleView();
  view.materialized_columns = {"__init"};
  EXPECT_EQ(schema.CreateView(view).code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, SelectionColumnMustBeMaterializedOrViewKey) {
  Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "items"}).ok());
  ViewDef view = SampleView();
  view.selection = SelectionDef{.column = "other", .equals = "x"};
  EXPECT_EQ(schema.CreateView(view).code(), StatusCode::kInvalidArgument);

  view.selection = SelectionDef{.column = "state", .equals = "x"};
  EXPECT_TRUE(schema.CreateView(view).ok());
}

TEST(SchemaTest, IndexOnViewRejected) {
  Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "items"}).ok());
  ASSERT_TRUE(schema.CreateView(SampleView()).ok());
  EXPECT_EQ(
      schema.CreateIndex({.table = "by_owner", .column = "state"}).code(),
      StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// ViewDefBuilder and sub-shard counts (ISSUE 9).
// ---------------------------------------------------------------------------

TEST(ViewDefBuilderTest, BuildsACompleteDefinition) {
  auto def = ViewDefBuilder("by_owner")
                 .Base("items")
                 .Key("owner")
                 .Materialize("state")
                 .Materialize("price")
                 .Select("state", "open")
                 .Shards(8)
                 .Build();
  ASSERT_TRUE(def.ok()) << def.status();
  EXPECT_EQ(def->name, "by_owner");
  EXPECT_EQ(def->base_table, "items");
  EXPECT_EQ(def->view_key_column, "owner");
  EXPECT_EQ(def->materialized_columns,
            (std::vector<ColumnName>{"state", "price"}));
  ASSERT_TRUE(def->selection.has_value());
  EXPECT_EQ(def->selection->column, "state");
  EXPECT_EQ(def->shard_count, 8);
}

TEST(ViewDefBuilderTest, DefaultsToOneShard) {
  auto def =
      ViewDefBuilder("by_owner").Base("items").Key("owner").Build();
  ASSERT_TRUE(def.ok()) << def.status();
  EXPECT_EQ(def->shard_count, 1);
}

TEST(ViewDefBuilderTest, RejectsIncompleteOrInvalidDefinitions) {
  EXPECT_EQ(ViewDefBuilder("").Base("items").Key("owner").Build().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ViewDefBuilder("v").Key("owner").Build().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ViewDefBuilder("v").Base("items").Build().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ViewDefBuilder("v")
                .Base("items")
                .Key("owner")
                .Materialize("__next")
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ViewDefBuilder("v").Base("items").Key("owner").Shards(0).Build().status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(ViewDefBuilder("v")
                .Base("items")
                .Key("owner")
                .Shards(kMaxViewShards + 1)
                .Build()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ShardedViewAccepted) {
  Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "items"}).ok());
  ViewDef view = SampleView();
  view.shard_count = 8;
  ASSERT_TRUE(schema.CreateView(view).ok());
  EXPECT_EQ(schema.GetView("by_owner")->shard_count, 8);
}

TEST(SchemaTest, ShardCountOutOfRangeRejected) {
  Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "items"}).ok());
  ViewDef view = SampleView();
  view.shard_count = 0;
  EXPECT_EQ(schema.CreateView(view).code(), StatusCode::kInvalidArgument);
  view.shard_count = kMaxViewShards + 1;
  EXPECT_EQ(schema.CreateView(view).code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ShardCountChangeOfExistingViewRejected) {
  // Re-sharding in place would strand rows under the old key layout; the
  // catalog refuses it (a new view name is the supported path).
  Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "items"}).ok());
  ViewDef view = SampleView();
  view.shard_count = 4;
  ASSERT_TRUE(schema.CreateView(view).ok());
  ViewDef resharded = SampleView();
  resharded.shard_count = 8;
  EXPECT_EQ(schema.CreateView(resharded).code(),
            StatusCode::kInvalidArgument);
  // Same shard_count stays a plain duplicate.
  ViewDef same = SampleView();
  same.shard_count = 4;
  EXPECT_EQ(schema.CreateView(same).code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, AffectsAndIsMaterialized) {
  ViewDef view = SampleView();
  EXPECT_TRUE(view.Affects("owner"));
  EXPECT_TRUE(view.Affects("state"));
  EXPECT_FALSE(view.Affects("description"));
  EXPECT_TRUE(view.IsMaterialized("state"));
  EXPECT_FALSE(view.IsMaterialized("owner"));
}

}  // namespace
}  // namespace mvstore::store

// Unit tests for the discrete-event core: event ordering, cancellation,
// the network model (latency, drops, partitions, downed endpoints), and the
// multi-core service queue.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/network.h"
#include "sim/service_queue.h"
#include "sim/simulation.h"

namespace mvstore::sim {
namespace {

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
  EXPECT_EQ(sim.steps(), 3u);
}

TEST(SimulationTest, SameInstantIsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.At(7, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, AfterSchedulesRelative) {
  Simulation sim;
  SimTime observed = -1;
  sim.At(100, [&] {
    sim.After(50, [&] { observed = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(observed, 150);
}

TEST(SimulationTest, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.After(1, recurse);
  };
  sim.After(1, recurse);
  sim.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), 10);
}

TEST(SimulationTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  int ran = 0;
  sim.At(10, [&] { ++ran; });
  sim.At(20, [&] { ++ran; });
  sim.RunUntil(15);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.Now(), 15);
  sim.RunUntil(25);
  EXPECT_EQ(ran, 2);
}

TEST(SimulationTest, CancelledEventDoesNotRun) {
  Simulation sim;
  bool ran = false;
  EventHandle handle = sim.AfterCancelable(10, [&] { ran = true; });
  EXPECT_TRUE(handle.active());
  handle.Cancel();
  EXPECT_FALSE(handle.active());
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, CancelAfterFireIsNoop) {
  Simulation sim;
  bool ran = false;
  EventHandle handle = sim.AfterCancelable(10, [&] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
  handle.Cancel();  // must not crash
}

TEST(SimulationTest, StepExecutesOneEvent) {
  Simulation sim;
  int ran = 0;
  sim.At(1, [&] { ++ran; });
  sim.At(2, [&] { ++ran; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(NetworkTest, DeliversAfterLatency) {
  Simulation sim;
  NetworkConfig config;
  config.base_latency = 100;
  config.jitter_mean = 0;
  Network net(&sim, Rng(1), config);
  SimTime delivered_at = -1;
  net.Send(0, 1, [&] { delivered_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(delivered_at, 100);
}

TEST(NetworkTest, JitterAddsVariableDelay) {
  Simulation sim;
  NetworkConfig config;
  config.base_latency = 100;
  config.jitter_mean = 50;
  Network net(&sim, Rng(2), config);
  std::vector<SimTime> deliveries;
  for (int i = 0; i < 50; ++i) {
    net.Send(0, 1, [&] { deliveries.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(deliveries.size(), 50u);
  bool saw_variation = false;
  for (SimTime t : deliveries) {
    EXPECT_GE(t, 100);
    if (t != deliveries[0]) saw_variation = true;
  }
  EXPECT_TRUE(saw_variation);
}

TEST(NetworkTest, SelfSendStillAsynchronous) {
  Simulation sim;
  Network net(&sim, Rng(3), NetworkConfig{});
  bool delivered = false;
  net.Send(2, 2, [&] { delivered = true; });
  EXPECT_FALSE(delivered) << "self-sends must go through the event queue";
  sim.Run();
  EXPECT_TRUE(delivered);
}

TEST(NetworkTest, DropProbabilityDropsEverythingAtOne) {
  Simulation sim;
  NetworkConfig config;
  config.drop_probability = 1.0;
  Network net(&sim, Rng(4), config);
  bool delivered = false;
  net.Send(0, 1, [&] { delivered = true; });
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(NetworkTest, PartitionCutsBothDirectionsAndRestores) {
  Simulation sim;
  Network net(&sim, Rng(5), NetworkConfig{});
  net.PartitionLink(0, 1);
  int delivered = 0;
  net.Send(0, 1, [&] { ++delivered; });
  net.Send(1, 0, [&] { ++delivered; });
  net.Send(0, 2, [&] { ++delivered; });  // unaffected link
  sim.Run();
  EXPECT_EQ(delivered, 1);

  net.RestoreLink(0, 1);
  net.Send(0, 1, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 2);
}

TEST(NetworkTest, DownEndpointDropsAllTraffic) {
  Simulation sim;
  Network net(&sim, Rng(6), NetworkConfig{});
  net.SetEndpointDown(1, true);
  EXPECT_TRUE(net.IsEndpointDown(1));
  int delivered = 0;
  net.Send(0, 1, [&] { ++delivered; });
  net.Send(1, 2, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 0);
  net.SetEndpointDown(1, false);
  net.Send(0, 1, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 1);
}

TEST(ServiceQueueTest, SingleCoreSerializesWork) {
  Simulation sim;
  ServiceQueue queue(&sim, 1);
  std::vector<SimTime> completions;
  sim.At(0, [&] {
    for (int i = 0; i < 3; ++i) {
      queue.Submit(100, [&] { completions.push_back(sim.Now()); });
    }
  });
  sim.Run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
}

TEST(ServiceQueueTest, MultiCoreRunsInParallel) {
  Simulation sim;
  ServiceQueue queue(&sim, 2);
  std::vector<SimTime> completions;
  sim.At(0, [&] {
    for (int i = 0; i < 4; ++i) {
      queue.Submit(100, [&] { completions.push_back(sim.Now()); });
    }
  });
  sim.Run();
  // Two cores: pairs complete at 100 and 200.
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 100, 200, 200}));
}

TEST(ServiceQueueTest, IdleQueueStartsImmediately) {
  Simulation sim;
  ServiceQueue queue(&sim, 2);
  sim.At(500, [&] {
    EXPECT_EQ(queue.QueueDelay(), 0);
    queue.Submit(10, [] {});
  });
  sim.Run();
  EXPECT_EQ(queue.busy_time(), 10);
  EXPECT_EQ(queue.tasks(), 1u);
}

TEST(ServiceQueueTest, QueueDelayReflectsBacklog) {
  Simulation sim;
  ServiceQueue queue(&sim, 1);
  sim.At(0, [&] {
    queue.Submit(100, [] {});
    EXPECT_EQ(queue.QueueDelay(), 100);
  });
  sim.Run();
}

}  // namespace
}  // namespace mvstore::sim

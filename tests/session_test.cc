// Session guarantees (Section V, Definition 4): a session's view Get must
// reflect the session's own preceding base-table Puts, implemented by
// blocking the Get until the session's pending propagations complete.

#include <gtest/gtest.h>

#include <string>

#include "store/client.h"
#include "tests/test_util.h"
#include "view/session_manager.h"

namespace mvstore {
namespace {

using store::Mutation;
using store::ReadConsistency;
using test::TestCluster;

// Slow down propagation dispatch so the guarantee actually has to block.
store::ClusterConfig SlowPropagationConfig() {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.perf.propagation_dispatch_mu = std::log(50000.0);  // ~50 ms
  config.perf.propagation_dispatch_sigma = 0.0;
  config.perf.propagation_dispatch_min = Millis(50);
  return config;
}

TEST(SessionManagerTest, TracksPendingPerSessionAndView) {
  view::SessionManager manager;
  EXPECT_FALSE(manager.MustDefer(1, "v"));
  manager.PropagationStarted(1, "v");
  manager.PropagationStarted(1, "v");
  EXPECT_TRUE(manager.MustDefer(1, "v"));
  EXPECT_FALSE(manager.MustDefer(2, "v"));   // other session unaffected
  EXPECT_FALSE(manager.MustDefer(1, "w"));   // other view unaffected

  int resumed = 0;
  manager.Defer(1, "v", [&resumed] { ++resumed; });
  manager.PropagationFinished(1, "v");
  EXPECT_EQ(resumed, 0) << "one of two propagations still pending";
  manager.PropagationFinished(1, "v");
  EXPECT_EQ(resumed, 1);
  EXPECT_FALSE(manager.MustDefer(1, "v"));
  EXPECT_EQ(manager.deferred_total(), 1u);
}

TEST(SessionManagerTest, SessionZeroNeverDefers) {
  view::SessionManager manager;
  manager.PropagationStarted(0, "v");
  EXPECT_FALSE(manager.MustDefer(0, "v"));
}

TEST(SessionTest, ViewGetSeesOwnPrecedingPut) {
  TestCluster t(SlowPropagationConfig());
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("rliu")},
                              {"status", std::string("open")}},
                             100);
  auto client = t.cluster.NewClient(0);
  client->BeginSession();

  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"status", std::string("resolved")}}, store::WriteOptions{})
          .ok());
  // Immediately read the view within the session: despite the ~50 ms
  // propagation dispatch delay, the Get must block and then see the update.
  // (Spelled explicitly; a session-carrying read at kEventual upgrades to
  // the same level automatically.)
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "rliu"),
      {.consistency = ReadConsistency::kReadYourWrites});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.records.size(), 1u);
  EXPECT_EQ(records.records[0].cells.GetValue("status").value_or(""), "resolved");
  EXPECT_GT(t.cluster.metrics().view_get_deferrals, 0u);
}

TEST(SessionTest, WithoutSessionViewMayBeStale) {
  TestCluster t(SlowPropagationConfig());
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("rliu")},
                              {"status", std::string("open")}},
                             100);
  auto client = t.cluster.NewClient(0);  // NO session

  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"status", std::string("resolved")}}, store::WriteOptions{})
          .ok());
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "rliu"),
      {.quorum = 3, .consistency = ReadConsistency::kEventual});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.records.size(), 1u);
  // Propagation dispatch is ~50 ms away; the read races ahead and sees the
  // stale value — exactly the staleness Section IV accepts.
  EXPECT_EQ(records.records[0].cells.GetValue("status").value_or(""), "open");
  EXPECT_EQ(t.cluster.metrics().view_get_deferrals, 0u);
}

TEST(SessionTest, GuaranteeCoversViewKeyUpdates) {
  TestCluster t(SlowPropagationConfig());
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("rliu")},
                              {"status", std::string("open")}},
                             100);
  auto client = t.cluster.NewClient(0);
  client->BeginSession();

  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"assigned_to", std::string("bob")}}, store::WriteOptions{})
          .ok());
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "bob"), store::ReadOptions{});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.records.size(), 1u);
  EXPECT_EQ(records.records[0].base_key, "1");
  // And the old key's row is gone from the reader's perspective.
  auto old_records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "rliu"), store::ReadOptions{});
  ASSERT_TRUE(old_records.ok());
  EXPECT_TRUE(old_records.records.empty());
}

TEST(SessionTest, OtherSessionsDoNotBlock) {
  TestCluster t(SlowPropagationConfig());
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("rliu")},
                              {"status", std::string("open")}},
                             100);
  auto writer = t.cluster.NewClient(0);
  auto reader = t.cluster.NewClient(0);  // same coordinator, own session
  writer->BeginSession();
  reader->BeginSession();

  ASSERT_TRUE(
      writer->PutSync("ticket", "1", {{"status", std::string("resolved")}}, store::WriteOptions{})
          .ok());
  const SimTime before = t.cluster.Now();
  auto records = reader->QuerySync(
      store::QuerySpec::View("assigned_to_view", "rliu"), store::ReadOptions{});
  ASSERT_TRUE(records.ok());
  // The reader's session has no pending propagations: no blocking beyond
  // normal request latency (far less than the 50 ms dispatch delay).
  EXPECT_LT(t.cluster.Now() - before, Millis(20));
}

TEST(SessionTest, SessionsDisabledByConfig) {
  store::ClusterConfig config = SlowPropagationConfig();
  config.session_guarantees = false;
  TestCluster t(config);
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("rliu")},
                              {"status", std::string("open")}},
                             100);
  auto client = t.cluster.NewClient(0);
  client->BeginSession();
  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"status", std::string("resolved")}}, store::WriteOptions{})
          .ok());
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "rliu"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records.records[0].cells.GetValue("status").value_or(""), "open");
}

TEST(SessionTest, CrashedCoordinatorAnswersDeferredGetByClientTimeout) {
  // A view Get deferred on the session guarantee is parked at the
  // coordinator. If the coordinator crashes, SessionManager::Reset() drops
  // the parked continuation with the rest of the coordinator's volatile
  // state — the client's own request deadline must answer the call, and the
  // callback must fire exactly once (no leak, no double answer).
  TestCluster t(SlowPropagationConfig());
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("rliu")},
                              {"status", std::string("open")}},
                             100);
  auto client = t.cluster.NewClient(0);
  client->BeginSession();
  client->set_request_timeout(Millis(200));

  ASSERT_TRUE(
      client
          ->PutSync("ticket", "1", {{"status", std::string("resolved")}},
                    store::WriteOptions{})
          .ok());
  int answers = 0;
  store::ReadResult out;
  client->Query(
      store::QuerySpec::View("assigned_to_view", "rliu"),
      {.consistency = ReadConsistency::kReadYourWrites},
      [&](store::ReadResult r) {
                    ++answers;
                    out = std::move(r);
                  });
  // Let the Get reach the coordinator and park on the pending propagation
  // (dispatch is ~50 ms away), then kill the coordinator.
  t.cluster.RunFor(Millis(5));
  ASSERT_GT(t.cluster.metrics().view_get_deferrals, 0u);
  ASSERT_EQ(answers, 0);
  ASSERT_TRUE(t.cluster.CrashServer(0));

  while (answers == 0) {
    ASSERT_TRUE(t.cluster.simulation().Step());
  }
  EXPECT_TRUE(out.status.IsTimedOut()) << out.status;

  // Recovery must not re-deliver the dropped continuation.
  ASSERT_TRUE(t.cluster.RestartServer(0));
  t.Quiesce();
  EXPECT_EQ(answers, 1);
}

TEST(SessionTest, MultiplePendingPutsAllVisible) {
  TestCluster t(SlowPropagationConfig());
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("a")},
                              {"status", std::string("s0")}},
                             100);
  t.cluster.BootstrapLoadRow("ticket", "2",
                             {{"assigned_to", std::string("a")},
                              {"status", std::string("s0")}},
                             101);
  auto client = t.cluster.NewClient(0);
  client->BeginSession();
  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"status", std::string("s1")}}, store::WriteOptions{}).ok());
  ASSERT_TRUE(
      client->PutSync("ticket", "2", {{"status", std::string("s2")}}, store::WriteOptions{}).ok());
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "a"), store::ReadOptions{});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.records.size(), 2u);
  for (const auto& record : records.records) {
    if (record.base_key == "1") {
      EXPECT_EQ(record.cells.GetValue("status").value_or(""), "s1");
    } else {
      EXPECT_EQ(record.cells.GetValue("status").value_or(""), "s2");
    }
  }
}

}  // namespace
}  // namespace mvstore

// The view scrubber: Definition-1 evaluation, violation detection, and
// offline repair.

#include <gtest/gtest.h>

#include <string>

#include "store/client.h"
#include "store/codec.h"
#include "tests/test_util.h"
#include "view/scrub.h"

namespace mvstore {
namespace {

using storage::Cell;
using storage::Row;
using test::TestCluster;

void Load(TestCluster& t, const Key& base, const std::string& who,
          const std::string& status, Timestamp ts) {
  t.cluster.BootstrapLoadRow("ticket", base,
                             {{"assigned_to", who}, {"status", status}}, ts);
}

TEST(ScrubTest, ExpectedViewMatchesDefinition1) {
  TestCluster t;
  Load(t, "1", "alice", "open", 100);
  Load(t, "2", "bob", "closed", 101);
  Load(t, "3", "alice", "closed", 102);

  auto expected = view::ComputeExpectedView(t.cluster, test::TicketView(t.cluster));
  ASSERT_EQ(expected.size(), 3u);
  EXPECT_EQ(expected[0].view_key, "alice");
  EXPECT_EQ(expected[0].base_key, "1");
  EXPECT_EQ(expected[1].view_key, "alice");
  EXPECT_EQ(expected[1].base_key, "3");
  EXPECT_EQ(expected[2].view_key, "bob");
  EXPECT_EQ(expected[2].cells.GetValue("status").value_or(""), "closed");
}

TEST(ScrubTest, CleanViewPassesCheck) {
  TestCluster t;
  Load(t, "1", "alice", "open", 100);
  auto report = view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(report.clean()) << report.Summary();
  EXPECT_EQ(report.live_rows, 1u);
  EXPECT_EQ(report.stale_rows, 1u);  // the family's sentinel anchor
}

TEST(ScrubTest, DetectsMissingRecord) {
  TestCluster t;
  Load(t, "1", "alice", "open", 100);
  // Corrupt: delete the view row from every replica.
  const Key row_key = store::ComposeViewRowKey("alice", "1");
  for (ServerId replica :
       t.cluster.server(0).ReplicasOf("assigned_to_view", row_key)) {
    Row tomb;
    tomb.Apply(store::kViewNextColumn, Cell::Tombstone(500));
    t.cluster.server(replica).EngineFor("assigned_to_view").ApplyRow(row_key,
                                                                     tomb);
  }
  auto report = view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.missing_records.size(), 1u);
  EXPECT_EQ(report.missing_records[0], "1@alice");
}

TEST(ScrubTest, DetectsSpuriousRecordAndMultipleLiveRows) {
  TestCluster t;
  Load(t, "1", "alice", "open", 100);
  // Corrupt: inject an orphan live row claiming base key 1 belongs to mallory.
  const Key orphan = store::ComposeViewRowKey("mallory", "1");
  Row row;
  row.Apply(store::kViewBaseKeyColumn, Cell::Live("1", 99));
  row.Apply(store::kViewNextColumn, Cell::Live("mallory", 99));
  row.Apply(store::kViewInitColumn, Cell::Live("1", 99));
  for (ServerId replica :
       t.cluster.server(0).ReplicasOf("assigned_to_view", orphan)) {
    t.cluster.server(replica).EngineFor("assigned_to_view").ApplyRow(orphan,
                                                                     row);
  }
  auto report = view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.spurious_records.size(), 1u);
  EXPECT_EQ(report.multiple_live_rows.size(), 1u);
}

TEST(ScrubTest, DetectsWrongCells) {
  TestCluster t;
  Load(t, "1", "alice", "open", 100);
  const Key row_key = store::ComposeViewRowKey("alice", "1");
  Row wrong;
  wrong.Apply("status", Cell::Live("bogus", 400));
  for (ServerId replica :
       t.cluster.server(0).ReplicasOf("assigned_to_view", row_key)) {
    t.cluster.server(replica).EngineFor("assigned_to_view").ApplyRow(row_key,
                                                                     wrong);
  }
  auto report = view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.wrong_cells.size(), 1u);
}

TEST(ScrubTest, DetectsBrokenChain) {
  TestCluster t;
  Load(t, "1", "alice", "open", 100);
  // Inject a stale row whose Next points at a nonexistent key.
  const Key stale = store::ComposeViewRowKey("ghost", "1");
  Row row;
  row.Apply(store::kViewBaseKeyColumn, Cell::Live("1", 50));
  row.Apply(store::kViewNextColumn, Cell::Live("nowhere", 50));
  for (ServerId replica :
       t.cluster.server(0).ReplicasOf("assigned_to_view", stale)) {
    t.cluster.server(replica).EngineFor("assigned_to_view").ApplyRow(stale,
                                                                     row);
  }
  auto report = view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.broken_chains.size(), 1u);
}

TEST(ScrubTest, RepairRestoresEveryCorruption) {
  TestCluster t;
  Load(t, "1", "alice", "open", 100);
  Load(t, "2", "bob", "closed", 101);

  // Wreck the view thoroughly: drop one row, corrupt another, add an orphan.
  auto& engine0 = t.cluster.server(0);
  const Key row1 = store::ComposeViewRowKey("alice", "1");
  for (ServerId replica :
       engine0.ReplicasOf("assigned_to_view", row1)) {
    Row tomb;
    tomb.Apply(store::kViewNextColumn, Cell::Tombstone(500));
    t.cluster.server(replica).EngineFor("assigned_to_view").ApplyRow(row1,
                                                                     tomb);
  }
  const Key orphan = store::ComposeViewRowKey("mallory", "2");
  Row bad;
  bad.Apply(store::kViewBaseKeyColumn, Cell::Live("2", 600));
  bad.Apply(store::kViewNextColumn, Cell::Live("mallory", 600));
  bad.Apply(store::kViewInitColumn, Cell::Live("1", 600));
  for (ServerId replica : engine0.ReplicasOf("assigned_to_view", orphan)) {
    t.cluster.server(replica).EngineFor("assigned_to_view").ApplyRow(orphan,
                                                                     bad);
  }
  ASSERT_FALSE(view::CheckView(t.cluster, test::TicketView(t.cluster)).clean());

  const std::size_t repaired =
      view::RepairView(t.cluster, test::TicketView(t.cluster));
  EXPECT_EQ(repaired, 2u);
  auto report = view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(report.clean()) << report.Summary();

  // And the repaired view still serves reads correctly.
  auto client = t.cluster.NewClient();
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "alice"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.records.size(), 1u);
  EXPECT_EQ(records.records[0].base_key, "1");
  auto gone = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "mallory"), {.quorum = 3});
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone.records.empty());
}

TEST(ScrubTest, RepairOnCleanViewIsIdempotent) {
  TestCluster t;
  Load(t, "1", "alice", "open", 100);
  ASSERT_TRUE(view::CheckView(t.cluster, test::TicketView(t.cluster)).clean());
  view::RepairView(t.cluster, test::TicketView(t.cluster));
  view::RepairView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(view::CheckView(t.cluster, test::TicketView(t.cluster)).clean());
}

}  // namespace
}  // namespace mvstore
